package eval

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"time"

	rootcause "repro"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/miner"
)

// SynthesizedSource is the pseudo-detector name selecting ground-truth
// alarm synthesis in PipelineConfig.Detectors: every scenario contributes
// one alarm built from its primary anomaly's signature, independent of
// detector recall (the paper's evaluations also start from a given alarm
// set).
const SynthesizedSource = "synthesized"

// PipelineConfig parameterizes a full evaluation-matrix run: every
// selected scenario is generated once, alarm-sourced per detector, and
// extracted per miner — all through the public rootcause API.
type PipelineConfig struct {
	// Scenarios selects catalog entries by name (nil = the whole
	// catalog, gen.Names()).
	Scenarios []string
	// Detectors are the alarm sources: SynthesizedSource and/or
	// registered detector names. A registered detector that does not
	// flag the anomaly bin falls back to a synthesized alarm, recorded
	// in ComboScore.AlarmSource. Nil = SynthesizedSource plus every
	// registered detector.
	Detectors []string
	// Miners selects frequent-itemset miners by registry name (nil =
	// every registered miner).
	Miners []string
	// Seed drives all scenario generation; each scenario derives its
	// generation seed from Seed and its own name, so adding or removing
	// scenarios never reshuffles the others.
	Seed uint64
	// SampleRate applies 1-in-N packet sampling during generation
	// (0 or 1 = unsampled).
	SampleRate uint32
	// WorkDir hosts the per-scenario stores ("" = temp dir, removed
	// afterwards).
	WorkDir string
	// UseJobs routes every extraction through the system's job manager
	// (Submit → Wait) instead of the synchronous Extract call,
	// exercising the production path end to end.
	UseJobs bool
	// Incidents adds the incident-mode column: per scenario, a
	// synthesized alarm storm is correlated into incidents and each
	// incident extracted through ONE job, scored jointly against the
	// full ground truth (see IncidentScore). Composite scenarios prove
	// one correlated extraction recovers every cause.
	Incidents bool
	// SegmentFormat selects the flow-store segment format the scenario
	// stores are written in (nfstore.FormatV1 or FormatV2; 0 = the
	// library default). Scores must be identical across formats — CI
	// compares the reports byte for byte.
	SegmentFormat uint16
	// Shards partitions every scenario store into N shards (0/1 = the
	// plain single-directory store). Scores must be identical across
	// shard counts — CI compares the reports modulo wall-clock.
	Shards int
	// HTTPPeers serves each shard from its own loopback HTTP server and
	// runs the matrix through the remote-peer client — the full rcad
	// cluster read path. Requires Shards >= 2.
	HTTPPeers bool
	// Ranking selects the itemset scoring mode for every extraction
	// (rootcause.RankingSupport / RankingLift / RankingWeighted; "" =
	// the engine default, support).
	Ranking string
}

// ComboScore is the outcome of one scenario × detector × miner cell.
type ComboScore struct {
	Scenario   string `json:"scenario"`
	Kind       string `json:"kind"`
	ExpectFail bool   `json:"expect_fail,omitempty"`
	Detector   string `json:"detector"`
	// AlarmSource is "detector" when the configured detector flagged the
	// anomaly bin, else "synthesized".
	AlarmSource string `json:"alarm_source"`
	// DetectorError records a detection failure (the cell then falls back
	// to a synthesized alarm so extraction is still scored).
	DetectorError string `json:"detector_error,omitempty"`
	Miner         string `json:"miner"`
	Itemsets      int    `json:"itemsets"`
	// Useful / Additional are the paper's alarm-level statistics
	// (purity-based usefulness, evidence beyond the alarm meta-data).
	Useful     bool `json:"useful"`
	Additional bool `json:"additional,omitempty"`
	// Precision, Recall and RankOfTrueCause are the ground-truth scores
	// (see TruthScore).
	Precision       float64 `json:"precision"`
	Recall          float64 `json:"recall"`
	RankOfTrueCause int     `json:"rank_of_true_cause"`
	// Pass is the cell verdict: expect-fail scenarios must stay
	// non-useful, all others must attribute the true cause.
	Pass bool `json:"pass"`
	// WallMS is the extraction wall-clock (generation and scoring
	// excluded).
	WallMS float64 `json:"wall_ms"`
	Error  string  `json:"error,omitempty"`
}

// MatrixTotals aggregates a set of combo cells. Precision/recall/MRR
// means cover only non-expect-fail cells (expect-fail scenarios have no
// extractable truth).
type MatrixTotals struct {
	Combos        int     `json:"combos"`
	Pass          int     `json:"pass"`
	MeanPrecision float64 `json:"mean_precision"`
	MeanRecall    float64 `json:"mean_recall"`
	// MeanReciprocalRank averages 1/rank of the true cause (0 when
	// missed) over non-expect-fail cells.
	MeanReciprocalRank float64 `json:"mean_reciprocal_rank"`
	// PeakItemsets is the largest ranked list any cell reported.
	PeakItemsets int     `json:"peak_itemsets"`
	WallMS       float64 `json:"wall_ms"`
}

// MinerTotals is the per-miner aggregate row of a matrix report.
type MinerTotals struct {
	Miner string `json:"miner"`
	MatrixTotals
}

// MatrixReport is the full evaluation-matrix outcome — the payload of
// BENCH_eval.json (docs/evaluation.md documents the format and how to
// compare reports PR-over-PR).
type MatrixReport struct {
	// Version is the report format version; bump on breaking changes.
	Version    int      `json:"version"`
	Seed       uint64   `json:"seed"`
	SampleRate uint32   `json:"sample_rate,omitempty"`
	JobPath    bool     `json:"job_path"`
	Scenarios  []string `json:"scenarios"`
	Detectors  []string `json:"detectors"`
	Miners     []string `json:"miners"`
	// WallMS is the end-to-end run wall-clock including generation.
	WallMS   float64       `json:"wall_ms"`
	Totals   MatrixTotals  `json:"totals"`
	PerMiner []MinerTotals `json:"per_miner"`
	Combos   []ComboScore  `json:"combos"`
	// Incidents is the incident-mode column (PipelineConfig.Incidents):
	// one row per scenario.
	Incidents []IncidentScore `json:"incidents,omitempty"`
}

// MatrixReportVersion is the current MatrixReport.Version.
const MatrixReportVersion = 1

// scenarioSeed derives a scenario's generation seed from the run seed and
// the scenario name, so matrix composition never reshuffles individual
// scenarios.
func scenarioSeed(base uint64, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return base*0x9e3779b9 + h.Sum64()
}

// RunMatrix evaluates every selected scenario × detector × miner cell
// through the public rootcause API and aggregates the report. Scenario
// generation or store failures abort the run; per-cell extraction errors
// are recorded in the cell and the matrix continues.
func RunMatrix(cfg PipelineConfig) (*MatrixReport, error) {
	t0 := time.Now()
	scenarios := cfg.Scenarios
	if len(scenarios) == 0 {
		scenarios = gen.Names()
	}
	detectors := cfg.Detectors
	if len(detectors) == 0 {
		detectors = append([]string{SynthesizedSource}, detector.Names()...)
	} else {
		// Fail fast on typos: a misspelled detector would otherwise
		// silently degrade every cell to its synthesized fallback.
		registered := make(map[string]bool)
		for _, n := range detector.Names() {
			registered[n] = true
		}
		for _, d := range detectors {
			if d != SynthesizedSource && !registered[d] {
				return nil, fmt.Errorf("eval: unknown detector %q (have: %s)",
					d, strings.Join(append([]string{SynthesizedSource}, detector.Names()...), ", "))
			}
		}
	}
	miners := cfg.Miners
	if len(miners) == 0 {
		miners = miner.Names()
	}
	workDir := cfg.WorkDir
	if workDir == "" {
		dir, err := os.MkdirTemp("", "eval-matrix-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		workDir = dir
	}

	report := &MatrixReport{
		Version:    MatrixReportVersion,
		Seed:       cfg.Seed,
		SampleRate: cfg.SampleRate,
		JobPath:    cfg.UseJobs,
		Scenarios:  scenarios,
		Detectors:  detectors,
		Miners:     miners,
	}
	for _, name := range scenarios {
		def, ok := gen.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("eval: unknown scenario %q (catalog: %s)",
				name, strings.Join(gen.Names(), ", "))
		}
		cells, incScore, err := runScenarioMatrix(def, cfg, workDir, detectors, miners)
		if err != nil {
			return nil, fmt.Errorf("eval: scenario %s: %w", name, err)
		}
		report.Combos = append(report.Combos, cells...)
		if incScore != nil {
			report.Incidents = append(report.Incidents, *incScore)
		}
	}
	report.WallMS = float64(time.Since(t0).Microseconds()) / 1000
	report.Totals = totals(report.Combos)
	for _, m := range miners {
		var cells []ComboScore
		for _, c := range report.Combos {
			if c.Miner == m {
				cells = append(cells, c)
			}
		}
		report.PerMiner = append(report.PerMiner, MinerTotals{Miner: m, MatrixTotals: totals(cells)})
	}
	return report, nil
}

// runScenarioMatrix generates one scenario into a fresh system and runs
// its detector × miner cells (plus the incident-mode column when
// configured).
func runScenarioMatrix(def gen.Def, cfg PipelineConfig, workDir string, detectors, miners []string) ([]ComboScore, *IncidentScore, error) {
	ctx := context.Background()
	sys, truth, cleanup, err := buildScenarioSystem(def, cfg, workDir)
	if err != nil {
		return nil, nil, err
	}
	defer cleanup()

	// Incident mode runs first, on the pristine alarm DB: the storm it
	// synthesizes (and correlates) must not mix with the per-cell alarms
	// the detector columns file below.
	var incScore *IncidentScore
	if cfg.Incidents {
		s := runScenarioIncidents(def, sys, truth)
		incScore = &s
	}

	// The bin a detector must flag to count as the alarm source: the
	// primary anomaly's interval, or the placement bin for quiet traces
	// (re-deriving the scenario is deterministic and cheap).
	sc := def.Scenario(scenarioSeed(cfg.Seed, def.Name))
	anomalyIv := quietAlarmInterval(sc, sys.Store().BinSeconds())
	kind := detector.KindUnknown
	if len(truth.Entries) > 0 {
		anomalyIv = truth.Entries[0].Interval
		kind = truth.Entries[0].Kind
	}

	var cells []ComboScore
	for _, det := range detectors {
		alarmID, source, detErr := sourceAlarm(ctx, sys, det, truth, anomalyIv, kind)
		entry, err := sys.Alarm(alarmID)
		if err != nil {
			return nil, nil, err
		}
		for _, m := range miners {
			cell := ComboScore{
				Scenario: def.Name, Kind: string(kind), ExpectFail: def.ExpectFail,
				Detector: det, AlarmSource: source, DetectorError: detErr, Miner: m,
			}
			res, wall, err := extractCell(ctx, sys, alarmID, m, cfg.Ranking, cfg.UseJobs)
			cell.WallMS = wall
			if err != nil {
				cell.Error = err.Error()
				cells = append(cells, cell)
				continue
			}
			if err := scoreCell(&cell, sys, &entry.Alarm, res, truth); err != nil {
				return nil, nil, err
			}
			cells = append(cells, cell)
		}
	}
	return cells, incScore, nil
}

// buildScenarioSystem creates the scenario's system, generates the trace
// into it, and — in HTTP-peer mode — republishes the freshly written
// shards behind loopback HTTP servers and reopens the system through the
// remote-peer client, so the matrix exercises the full cluster read
// path. The returned cleanup closes everything in either mode.
func buildScenarioSystem(def gen.Def, cfg PipelineConfig, workDir string) (*rootcause.System, *gen.Truth, func(), error) {
	if cfg.HTTPPeers && cfg.Shards < 2 {
		return nil, nil, nil, fmt.Errorf("eval: HTTPPeers requires Shards >= 2 (got %d)", cfg.Shards)
	}
	var sysOpts []rootcause.Option
	if cfg.SegmentFormat != 0 {
		sysOpts = append(sysOpts, rootcause.WithSegmentFormat(cfg.SegmentFormat))
	}
	if cfg.Shards > 1 {
		sysOpts = append(sysOpts, rootcause.WithShards(cfg.Shards))
	}
	storeDir := filepath.Join(workDir, "scenario-"+def.Name)
	sys, err := rootcause.Create(rootcause.Config{StoreDir: storeDir}, sysOpts...)
	if err != nil {
		return nil, nil, nil, err
	}

	sc := def.Scenario(scenarioSeed(cfg.Seed, def.Name))
	sc.SampleRate = cfg.SampleRate
	truth, err := sc.Generate(sys.Store())
	if err != nil {
		sys.Close()
		return nil, nil, nil, err
	}
	if !cfg.HTTPPeers {
		return sys, truth, func() { sys.Close() }, nil
	}

	// Cluster mode: hand each shard directory to its own HTTP server and
	// reopen the system as a remote-peer client over them.
	if err := sys.Close(); err != nil {
		return nil, nil, nil, err
	}
	peers, stopPeers, err := ServeShardDirs(storeDir)
	if err != nil {
		return nil, nil, nil, err
	}
	remote, err := rootcause.Open(rootcause.Config{}, rootcause.WithPeers(peers))
	if err != nil {
		stopPeers()
		return nil, nil, nil, err
	}
	return remote, truth, func() { remote.Close(); stopPeers() }, nil
}

// quietAlarmInterval is the placement-bin interval of a scenario with no
// placements (the quiet / false-positive case).
func quietAlarmInterval(sc *gen.Scenario, binSec uint32) flow.Interval {
	start := sc.StartTime - sc.StartTime%binSec
	bin := uint32(sc.Bins / 2)
	return flow.Interval{
		Start: start + bin*binSec,
		End:   start + (bin+1)*binSec,
	}
}

// sourceAlarm produces the alarm for one detector column: a synthesized
// ground-truth alarm for SynthesizedSource, otherwise the configured
// detector's own alarm on the anomaly bin. A detector that errors or
// does not flag the bin falls back to the synthesized alarm (the
// paper's evaluations also start from a given alarm set, not from
// detector recall); a detection error is reported back for the cells.
func sourceAlarm(ctx context.Context, sys *rootcause.System, det string, truth *gen.Truth, anomalyIv flow.Interval, kind detector.Kind) (id, source, detErr string) {
	if det != SynthesizedSource {
		ids, err := sys.Detect(ctx, det, truth.Span)
		if err != nil {
			detErr = err.Error()
		}
		for _, aid := range ids {
			entry, err := sys.Alarm(aid)
			if err != nil {
				detErr = err.Error()
				break
			}
			if entry.Alarm.Interval.Overlaps(anomalyIv) {
				return aid, "detector", ""
			}
		}
	}
	return sys.FileAlarm(synthesizedAlarm(truth, anomalyIv, kind)), SynthesizedSource, detErr
}

// synthesizedAlarm builds the ground-truth alarm: the primary anomaly's
// signature, or a plausible-looking false positive for quiet traces.
func synthesizedAlarm(truth *gen.Truth, anomalyIv flow.Interval, kind detector.Kind) detector.Alarm {
	if len(truth.Entries) > 0 {
		return SynthesizeAlarm(&truth.Entries[0])
	}
	return detector.Alarm{
		Detector: SynthesizedSource, Interval: anomalyIv,
		Kind: detector.KindDDoS, Score: 1.1,
		Meta: []detector.MetaItem{
			{Feature: flow.FeatDstIP, Value: uint32(flow.IPFromOctets(198, 18, 0, 0))},
			{Feature: flow.FeatDstPort, Value: 80},
		},
	}
}

// extractCell runs one extraction — synchronously or through the job
// manager — and returns the result (nil when the interval held nothing to
// mine) and the wall-clock in milliseconds.
func extractCell(ctx context.Context, sys *rootcause.System, alarmID, minerName, ranking string, useJobs bool) (*rootcause.Result, float64, error) {
	t0 := time.Now()
	opts := []rootcause.Option{rootcause.WithMiner(minerName)}
	if ranking != "" {
		opts = append(opts, rootcause.WithRanking(ranking))
	}
	var res *rootcause.Result
	var err error
	if useJobs {
		var jobID string
		jobID, err = sys.Submit(rootcause.JobRequest{AlarmID: alarmID},
			append(opts, rootcause.WithTransientJob())...)
		if err == nil {
			var jr *rootcause.JobResult
			jr, err = sys.Wait(ctx, jobID)
			if jr != nil {
				res = jr.Result
			}
		}
	} else {
		res, err = sys.Extract(ctx, alarmID, opts...)
	}
	wall := float64(time.Since(t0).Microseconds()) / 1000
	if errors.Is(err, core.ErrNoCandidates) {
		return nil, wall, nil
	}
	return res, wall, err
}

// scoreCell fills one cell's ground-truth and alarm-level scores.
func scoreCell(cell *ComboScore, sys *rootcause.System, alarm *detector.Alarm, res *rootcause.Result, truth *gen.Truth) error {
	opts := DefaultScoreOptions()
	ts, err := ScoreTruth(sys.Store(), alarm.Interval, res, truth, opts)
	if err != nil {
		return err
	}
	cell.Precision = ts.Precision
	cell.Recall = ts.Recall
	cell.RankOfTrueCause = ts.Rank
	if res != nil {
		cell.Itemsets = len(res.Itemsets)
		as, err := ScoreResult(sys.Store(), alarm, res, opts)
		if err != nil {
			return err
		}
		cell.Useful = as.Useful
		cell.Additional = as.Additional
	}
	if cell.ExpectFail {
		cell.Pass = !cell.Useful
	} else {
		cell.Pass = cell.Useful && cell.RankOfTrueCause >= 1
	}
	return nil
}

// totals aggregates a cell set (see MatrixTotals for the conventions).
func totals(cells []ComboScore) MatrixTotals {
	var t MatrixTotals
	scored := 0
	var sumP, sumR, sumRR float64
	for _, c := range cells {
		t.Combos++
		if c.Pass {
			t.Pass++
		}
		if c.Itemsets > t.PeakItemsets {
			t.PeakItemsets = c.Itemsets
		}
		t.WallMS += c.WallMS
		if c.ExpectFail || c.Error != "" {
			continue
		}
		scored++
		sumP += c.Precision
		sumR += c.Recall
		if c.RankOfTrueCause > 0 {
			sumRR += 1 / float64(c.RankOfTrueCause)
		}
	}
	if scored > 0 {
		t.MeanPrecision = sumP / float64(scored)
		t.MeanRecall = sumR / float64(scored)
		t.MeanReciprocalRank = sumRR / float64(scored)
	}
	return t
}
