package eval

import (
	"testing"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/nfstore"
)

func TestRunSWITCHSubsetWithDetector(t *testing.T) {
	// Three SWITCH scenarios with the histogram/KL detector in the loop:
	// a port scan, a DDoS and a UDP flood (indexes 0, 20, 29 in the
	// 31-spec suite).
	all := SWITCHSpecs(2)
	subset := []ScenarioSpec{all[0], all[20], all[29]}
	res, err := RunSuite("switch-subset", subset, SuiteConfig{
		SeedBase: 501, SampleRate: 1, WorkDir: t.TempDir(),
		UseDetector: true, Detector: "histogram",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range res.Evals {
		if !e.Score.Useful {
			t.Errorf("scenario %d (%s) not useful: %+v", i, e.Name, e)
		}
	}
	// At least the scan must come from the detector itself (the flood may
	// need the synthesized fallback: the histogram detector is flow-count
	// weighted).
	if res.Evals[0].AlarmSource != "detector" {
		t.Errorf("scan alarm source = %s, want detector", res.Evals[0].AlarmSource)
	}
}

func TestSuiteAggregationOnEmpty(t *testing.T) {
	s := &SuiteResult{Name: "empty"}
	if s.UsefulFraction() != 0 || s.AdditionalFraction() != 0 {
		t.Fatal("empty suite fractions must be zero")
	}
}

func TestScoreResultNoItemsets(t *testing.T) {
	store, err := nfstore.Create(t.TempDir(), 300)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	s := gen.Scenario{
		Background: gen.Background{NumPoPs: 1, FlowsPerBin: 50},
		Bins:       2, StartTime: 1_300_000_200, Seed: 1,
	}
	truth, err := s.Generate(store)
	if err != nil {
		t.Fatal(err)
	}
	alarm := &detector.Alarm{Interval: flow.Interval{
		Start: truth.Span.Start, End: truth.Span.Start + 300}}
	res := &core.Result{Alarm: *alarm}
	score, err := ScoreResult(store, alarm, res, DefaultScoreOptions())
	if err != nil {
		t.Fatal(err)
	}
	if score.Useful || score.Additional || score.FlowRecall != 0 {
		t.Fatalf("empty result must score zero: %+v", score)
	}
}
