package eval

import (
	"strings"
	"testing"
)

// TestIncidentMode is the incident-layer acceptance test: on the
// portscan-ddos composite the synthesized alarm storm must collapse at
// least 5x into one incident, whose single extraction job recovers both
// ground-truth causes in the top 3 with the lead-lag chain ordering the
// scan before the flood; a plain scenario and an expect-fail one must
// pass their own rules.
func TestIncidentMode(t *testing.T) {
	rep, err := RunMatrix(PipelineConfig{
		Scenarios: []string{"portscan", "portscan-ddos", "stealthy"},
		Detectors: []string{SynthesizedSource},
		Miners:    []string{"apriori"},
		Seed:      7,
		Incidents: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Incidents) != 3 {
		t.Fatalf("incident rows = %d, want 3", len(rep.Incidents))
	}
	byName := map[string]IncidentScore{}
	for _, s := range rep.Incidents {
		byName[s.Scenario] = s
	}

	comp := byName["portscan-ddos"]
	if comp.Error != "" {
		t.Fatalf("composite errored: %s", comp.Error)
	}
	if !comp.Composite {
		t.Fatal("portscan-ddos not marked composite")
	}
	if comp.Incidents != 1 {
		t.Fatalf("composite correlated into %d incidents, want 1", comp.Incidents)
	}
	if comp.Reduction < 5 {
		t.Fatalf("reduction %.1fx < 5x (%d alarms -> %d incidents)",
			comp.Reduction, comp.AlarmsIn, comp.Incidents)
	}
	if comp.Jobs != comp.Incidents {
		t.Fatalf("%d jobs for %d incidents, want exactly one each", comp.Jobs, comp.Incidents)
	}
	if comp.Recall != 1 || comp.WorstRank < 1 || comp.WorstRank > 3 {
		t.Fatalf("joint recovery failed: recall=%.2f worst rank=%d", comp.Recall, comp.WorstRank)
	}
	if !comp.ChainOK {
		t.Fatal("lead-lag chain does not order portscan before ddos")
	}
	if !comp.Pass {
		t.Fatalf("composite did not pass: %+v", comp)
	}

	single := byName["portscan"]
	if !single.Pass || single.Recall != 1 {
		t.Fatalf("single-anomaly incident mode failed: %+v", single)
	}
	if single.Jobs != single.Incidents {
		t.Fatalf("%d jobs for %d incidents", single.Jobs, single.Incidents)
	}

	stealthy := byName["stealthy"]
	if !stealthy.ExpectFail {
		t.Fatal("stealthy not marked expect-fail")
	}
	if !stealthy.Pass {
		t.Fatalf("expect-fail scenario attributed causes: %+v", stealthy)
	}

	// Alarm-mode cells are unaffected by the incident column.
	for _, c := range rep.Combos {
		if !c.Pass {
			t.Fatalf("alarm-mode cell regressed: %+v", c)
		}
	}

	// The Markdown report renders the incident section.
	md := rep.Markdown()
	if !strings.Contains(md, "## Incident mode") || !strings.Contains(md, "portscan-ddos (composite)") {
		t.Fatalf("markdown missing incident section:\n%s", md)
	}
}
