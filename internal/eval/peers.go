package eval

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/nfstore"
	"repro/internal/shardstore"
)

// ServeShardDirs opens every shard directory of a sharded store and
// serves each from its own loopback HTTP server under /api/v1/shard —
// the same mount a peer rcad node exposes. It returns the peer URLs (in
// shard order) for shardstore.OpenRemote / rootcause.WithPeers and a
// stop function that shuts the servers down and closes the stores.
//
// This is the in-process stand-in for a real rcad cluster: evaluation
// and benchmarks exercise the full HTTP read path (framed query streams,
// JSON aggregations) without spawning processes.
func ServeShardDirs(dir string) (peers []string, stop func(), err error) {
	shardDirs, err := shardstore.ShardDirs(dir)
	if err != nil {
		return nil, nil, err
	}
	var (
		stores  []*nfstore.Store
		servers []*http.Server
	)
	stop = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		for _, srv := range servers {
			srv.Shutdown(ctx)
		}
		for _, st := range stores {
			st.Close()
		}
	}
	for _, sub := range shardDirs {
		st, err := nfstore.Open(sub)
		if err != nil {
			stop()
			return nil, nil, err
		}
		stores = append(stores, st)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, err
		}
		mux := http.NewServeMux()
		mux.Handle("/api/v1/shard/", http.StripPrefix("/api/v1/shard", shardstore.Handler(st)))
		srv := &http.Server{Handler: mux}
		servers = append(servers, srv)
		go srv.Serve(ln)
		peers = append(peers, fmt.Sprintf("http://%s", ln.Addr()))
	}
	return peers, stop, nil
}
