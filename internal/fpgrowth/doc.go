// Package fpgrowth implements the FP-Growth frequent itemset mining
// algorithm (Han, Pei & Yin, SIGMOD'00) over the same flow-transaction
// datasets as package apriori.
//
// The paper's system uses Apriori; FP-Growth is included as the natural
// baseline any FIM-based system would be compared against (experiment E8
// in DESIGN.md) and as an independent implementation for cross-checking
// mining correctness: both miners must produce identical itemset/support
// results on every dataset, a property the test suites of both packages
// enforce.
package fpgrowth
