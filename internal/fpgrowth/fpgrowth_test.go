package fpgrowth

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/apriori"
	"repro/internal/flow"
	"repro/internal/itemset"
	"repro/internal/stats"
)

func randomDataset(seed uint64, n int) *itemset.Dataset {
	rng := stats.NewRNG(seed)
	protos := []flow.Protocol{flow.ProtoTCP, flow.ProtoUDP, flow.ProtoICMP}
	recs := make([]flow.Record, n)
	for i := range recs {
		pk := uint64(rng.Intn(50) + 1)
		recs[i] = flow.Record{
			Start:   1,
			SrcIP:   flow.IP(rng.Intn(4)),
			DstIP:   flow.IP(rng.Intn(4)),
			SrcPort: uint16(rng.Intn(4)),
			DstPort: uint16(rng.Intn(4)),
			Proto:   protos[rng.Intn(3)],
			Packets: pk,
			Bytes:   pk * 40,
		}
	}
	return itemset.FromRecords(recs)
}

// assertSameResults compares two canonical mining results exactly.
func assertSameResults(t *testing.T, a, b []itemset.Frequent, label string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: fpgrowth found %d itemsets, apriori %d", label, len(a), len(b))
	}
	am := make(map[string]uint64, len(a))
	for _, fr := range a {
		am[fr.Items.Key()] = fr.Support
	}
	for _, fr := range b {
		sup, ok := am[fr.Items.Key()]
		if !ok {
			t.Fatalf("%s: apriori found %v, fpgrowth did not", label, fr)
		}
		if sup != fr.Support {
			t.Fatalf("%s: %v support %d (fpgrowth) vs %d (apriori)", label, fr.Items, sup, fr.Support)
		}
	}
}

func TestMatchesApriori(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		ds := randomDataset(seed, 200)
		for _, minSup := range []uint64{1, 5, 25, 80} {
			opts := Options{MinSupport: minSup}
			fp, err := Mine(t.Context(), ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			ap, err := apriori.Mine(t.Context(), ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, fp, ap, "flows")
		}
	}
}

func TestMatchesAprioriByPackets(t *testing.T) {
	for seed := uint64(20); seed <= 23; seed++ {
		ds := randomDataset(seed, 150)
		for _, minSup := range []uint64{50, 400, 2000} {
			opts := Options{MinSupport: minSup, ByPackets: true}
			fp, err := Mine(t.Context(), ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			ap, err := apriori.Mine(t.Context(), ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, fp, ap, "packets")
		}
	}
}

func TestMaxLenAgreement(t *testing.T) {
	ds := randomDataset(9, 120)
	for maxLen := 1; maxLen <= 5; maxLen++ {
		opts := Options{MinSupport: 4, MaxLen: maxLen}
		fp, err := Mine(t.Context(), ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		ap, err := apriori.Mine(t.Context(), ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, fp, ap, "maxlen")
		for _, fr := range fp {
			if fr.Items.Len() > maxLen {
				t.Fatalf("MaxLen=%d violated: %v", maxLen, fr)
			}
		}
	}
}

func TestZeroSupportRejected(t *testing.T) {
	ds := randomDataset(1, 10)
	if _, err := Mine(t.Context(), ds, Options{MinSupport: 0}); err != apriori.ErrZeroSupport {
		t.Fatalf("got %v, want ErrZeroSupport", err)
	}
}

func TestEmptyDataset(t *testing.T) {
	got, err := Mine(t.Context(), itemset.FromRecords(nil), Options{MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("empty dataset must mine to nothing")
	}
}

func TestMineMaximalAgreement(t *testing.T) {
	ds := randomDataset(31, 250)
	opts := Options{MinSupport: 12}
	fp, err := MineMaximal(t.Context(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := apriori.MineMaximal(t.Context(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, fp, ap, "maximal")
}

func TestQuickAgreementProperty(t *testing.T) {
	f := func(seed uint64, sizeRaw, supRaw uint8) bool {
		size := int(sizeRaw%50) + 5
		minSup := uint64(supRaw%12) + 1
		ds := randomDataset(seed, size)
		opts := Options{MinSupport: minSup, ByPackets: seed%2 == 0}
		if opts.ByPackets {
			opts.MinSupport *= 20
		}
		fp, err1 := Mine(t.Context(), ds, opts)
		ap, err2 := apriori.Mine(t.Context(), ds, opts)
		if err1 != nil || err2 != nil || len(fp) != len(ap) {
			return false
		}
		m := make(map[string]uint64, len(fp))
		for _, fr := range fp {
			m[fr.Items.Key()] = fr.Support
		}
		for _, fr := range ap {
			if m[fr.Items.Key()] != fr.Support {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMineCancelled(t *testing.T) {
	ds := randomDataset(3, 500)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Mine(ctx, ds, Options{MinSupport: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Mine err = %v, want context.Canceled", err)
	}
}
