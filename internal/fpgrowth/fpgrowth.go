package fpgrowth

import (
	"context"
	"sort"

	"repro/internal/flow"
	"repro/internal/itemset"
	"repro/internal/miner"
)

// Options is the shared miner configuration (see miner.Options), so the
// two built-in miners are interchangeable.
type Options = miner.Options

// Miner is the registry adapter: package-level Mine/MineMaximal behind
// the miner.Miner interface. Registered as "fpgrowth".
type Miner struct{}

// Mine implements miner.Miner.
func (Miner) Mine(ctx context.Context, ds *itemset.Dataset, opts Options) ([]itemset.Frequent, error) {
	return Mine(ctx, ds, opts)
}

// MineMaximal implements miner.Miner.
func (Miner) MineMaximal(ctx context.Context, ds *itemset.Dataset, opts Options) ([]itemset.Frequent, error) {
	return MineMaximal(ctx, ds, opts)
}

func init() {
	miner.MustRegister("fpgrowth", func() miner.Miner { return Miner{} })
}

// node is one FP-tree node.
type node struct {
	item     itemset.Item
	count    uint64
	parent   *node
	children map[itemset.Item]*node
	next     *node // header-table chain of nodes holding the same item
}

// tree is an FP-tree with its header table.
type tree struct {
	root   *node
	heads  map[itemset.Item]*node  // first node per item
	counts map[itemset.Item]uint64 // total support per item
}

func newTree() *tree {
	return &tree{
		root:   &node{children: make(map[itemset.Item]*node)},
		heads:  make(map[itemset.Item]*node),
		counts: make(map[itemset.Item]uint64),
	}
}

// insert adds one (sorted-by-order) item path with the given weight.
func (t *tree) insert(items []itemset.Item, weight uint64) {
	cur := t.root
	for _, it := range items {
		child, ok := cur.children[it]
		if !ok {
			child = &node{item: it, parent: cur, children: make(map[itemset.Item]*node)}
			cur.children[it] = child
			child.next = t.heads[it]
			t.heads[it] = child
		}
		child.count += weight
		t.counts[it] += weight
		cur = child
	}
}

// Mine returns all itemsets with support >= opts.MinSupport in the chosen
// dimension, canonically sorted; the result is element-for-element equal to
// apriori.Mine on the same input. Cancelling ctx aborts mining between
// conditional-tree expansions and returns ctx.Err().
func Mine(ctx context.Context, ds *itemset.Dataset, opts Options) ([]itemset.Frequent, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	maxLen := opts.MaxLen
	if maxLen <= 0 || maxLen > flow.NumFeatures {
		maxLen = flow.NumFeatures
	}

	// Pass 1: global item supports.
	support := make(map[itemset.Item]uint64)
	for i := 0; i < ds.Len(); i++ {
		if i%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		tx := ds.Tx(i)
		w := tx.Weight(opts.ByPackets)
		for _, it := range tx.Items {
			support[it] += w
		}
	}

	// Global item order: descending support, ties by item value, so that
	// every transaction inserts items in one canonical order.
	order := make(map[itemset.Item]int, len(support))
	{
		items := make([]itemset.Item, 0, len(support))
		for it, c := range support {
			if c >= opts.MinSupport {
				items = append(items, it)
			}
		}
		sort.Slice(items, func(i, j int) bool {
			if support[items[i]] != support[items[j]] {
				return support[items[i]] > support[items[j]]
			}
			return items[i] < items[j]
		})
		for rank, it := range items {
			order[it] = rank
		}
	}

	// Pass 2: build the tree over frequent items only.
	t := newTree()
	var path []itemset.Item
	for i := 0; i < ds.Len(); i++ {
		if i%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		tx := ds.Tx(i)
		path = path[:0]
		for _, it := range tx.Items {
			if _, ok := order[it]; ok {
				path = append(path, it)
			}
		}
		if len(path) == 0 {
			continue
		}
		sort.Slice(path, func(a, b int) bool { return order[path[a]] < order[path[b]] })
		t.insert(path, tx.Weight(opts.ByPackets))
	}

	var result []itemset.Frequent
	if err := mineTree(ctx, t, nil, opts.MinSupport, maxLen, &result); err != nil {
		return nil, err
	}
	itemset.SortFrequent(result)
	return result, nil
}

// MineMaximal mines and reduces to maximal itemsets.
func MineMaximal(ctx context.Context, ds *itemset.Dataset, opts Options) ([]itemset.Frequent, error) {
	all, err := Mine(ctx, ds, opts)
	if err != nil {
		return nil, err
	}
	return itemset.MaximalOnly(all), nil
}

// mineTree recursively mines t, emitting each frequent item of t extended
// with the current suffix, then recursing on the item's conditional tree.
func mineTree(ctx context.Context, t *tree, suffix itemset.Set, minSupport uint64, maxLen int, out *[]itemset.Frequent) error {
	if len(suffix) >= maxLen {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// Deterministic iteration order over header items.
	items := make([]itemset.Item, 0, len(t.heads))
	for it := range t.heads {
		if t.counts[it] >= minSupport {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })

	for _, it := range items {
		newSet := suffix.Union(itemset.Set{it})
		*out = append(*out, itemset.Frequent{Items: newSet, Support: t.counts[it]})
		if len(newSet) >= maxLen {
			continue
		}
		cond := conditionalTree(t, it)
		if len(cond.heads) > 0 {
			if err := mineTree(ctx, cond, newSet, minSupport, maxLen, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// conditionalTree builds the conditional FP-tree of item: the tree of
// prefix paths leading to nodes holding the item, weighted by those nodes'
// counts.
func conditionalTree(t *tree, it itemset.Item) *tree {
	cond := newTree()
	var prefix []itemset.Item
	for n := t.heads[it]; n != nil; n = n.next {
		prefix = prefix[:0]
		for p := n.parent; p != nil && p.parent != nil; p = p.parent {
			prefix = append(prefix, p.item)
		}
		if len(prefix) == 0 {
			continue
		}
		// prefix was collected leaf→root; reverse to root→leaf so the
		// conditional tree shares structure the same way.
		for i, j := 0, len(prefix)-1; i < j; i, j = i+1, j-1 {
			prefix[i], prefix[j] = prefix[j], prefix[i]
		}
		cond.insert(prefix, n.count)
	}
	return cond
}
