// Package jobs is the asynchronous job manager behind the system's
// job-oriented extraction API. It decouples accepting work from doing
// it — the operating mode service-scale itemset-mining RCA systems
// converge on (Fast Dimensional Analysis, arXiv:1911.01225): analyses
// run as jobs on a bounded worker pool over a shared store, callers
// submit and poll (or subscribe) instead of holding a connection for
// the whole self-tuning mining run.
//
// The manager owns four concerns:
//
//   - Admission control. The submission queue has a fixed depth;
//     Submit never blocks — a full queue rejects with ErrQueueFull so
//     the HTTP layer can answer 429 instead of stacking goroutines.
//
//   - Lifecycle. Every job moves queued → running → done | failed |
//     canceled. Cancel works in any non-terminal state: a queued job is
//     canceled in place (it never runs), a running job has its context
//     canceled and winds down at the next cancellation point inside the
//     task (the extraction engine checks its context in every scan and
//     mining stride).
//
//   - Progress. Tasks receive a report callback; the latest sample is
//     visible in Status and fanned out to subscribers (the SSE seam).
//
//   - Retention. Terminal jobs are kept for Result fetches until their
//     TTL expires or the LRU cap evicts the least recently touched one,
//     so a disconnected client can come back for its result without the
//     manager growing without bound.
package jobs
