package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"
)

// State is a job lifecycle state.
type State string

// Job lifecycle: queued → running → done | failed | canceled. The three
// right-hand states are terminal.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Progress is the latest progress sample of a job. The zero value means
// "no progress reported yet". Fields are task-defined; the extraction
// tasks fill Phase/TuningRound/Candidates/Itemsets from the engine's
// sampled callback and batch tasks additionally count Completed/Total.
type Progress struct {
	// Phase names the stage the task is in (e.g. "candidates",
	// "mine-flows", "baseline").
	Phase string `json:"phase,omitempty"`
	// TuningRound is the self-tuning round within a mining phase.
	TuningRound int `json:"tuning_round,omitempty"`
	// Candidates counts candidate flows streamed so far.
	Candidates uint64 `json:"candidates,omitempty"`
	// Itemsets counts maximal itemsets mined so far.
	Itemsets int `json:"itemsets,omitempty"`
	// Completed/Total track batch jobs: alarms finished out of submitted.
	Completed int `json:"completed,omitempty"`
	Total     int `json:"total,omitempty"`
}

// Status is a point-in-time snapshot of one job, safe to serialize.
type Status struct {
	ID       string   `json:"id"`
	Kind     string   `json:"kind"`
	State    State    `json:"state"`
	Progress Progress `json:"progress"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`

	// Error is the failure (or cancellation) message of a terminal job.
	Error string `json:"error,omitempty"`
}

// Task is the unit of work a job runs. ctx is canceled by Cancel and by
// manager shutdown; report publishes a progress sample. The returned
// value is retained (per the TTL/LRU policy) for Result.
type Task func(ctx context.Context, report func(Progress)) (any, error)

// Sentinel errors of the manager API.
var (
	// ErrQueueFull rejects a submission when the queue is at depth — the
	// admission-control signal the HTTP layer maps to 429.
	ErrQueueFull = errors.New("jobs: submission queue full")
	// ErrNotFound marks an unknown (or already evicted) job ID.
	ErrNotFound = errors.New("jobs: job not found")
	// ErrNotDone marks a Result fetch on a job that has not finished.
	ErrNotDone = errors.New("jobs: job not finished")
	// ErrDone marks a Cancel of a job that already reached a terminal
	// state.
	ErrDone = errors.New("jobs: job already finished")
	// ErrClosed rejects submissions after Close.
	ErrClosed = errors.New("jobs: manager closed")
)

// Config configures a Manager. Zero values inherit defaults.
type Config struct {
	// Workers bounds how many jobs run concurrently (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds how many jobs may wait beyond the running ones;
	// a submission beyond it fails with ErrQueueFull (default 64).
	QueueDepth int
	// ResultTTL is how long a terminal job stays fetchable (default 15
	// minutes). Expiry is checked lazily on manager calls.
	ResultTTL time.Duration
	// MaxResults caps how many terminal jobs are retained; beyond it the
	// least recently touched one is evicted (default 256).
	MaxResults int
	// now is the clock seam for retention tests.
	now func() time.Time
}

// Defaults for Config zero values.
const (
	DefaultQueueDepth = 64
	DefaultResultTTL  = 15 * time.Minute
	DefaultMaxResults = 256
)

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.ResultTTL <= 0 {
		c.ResultTTL = DefaultResultTTL
	}
	if c.MaxResults <= 0 {
		c.MaxResults = DefaultMaxResults
	}
	if c.now == nil {
		c.now = time.Now
	}
}

// job is the manager-internal record of one submission.
type job struct {
	id   string
	kind string
	task Task

	ctx    context.Context
	cancel context.CancelFunc

	state       State
	canceled    bool // Cancel was requested (distinguishes canceled from failed)
	transient   bool // drop from the registry once the outcome is consumed
	progress    Progress
	submittedAt time.Time
	startedAt   *time.Time
	finishedAt  *time.Time
	lastTouch   time.Time // LRU key: last submission/result access

	result any
	err    error

	done chan struct{} // closed on terminal transition
	subs []chan Status // progress subscribers (SSE)
}

// Manager runs jobs on a bounded worker pool with admission control and
// retains terminal jobs for later result fetches. Safe for concurrent
// use.
type Manager struct {
	cfg Config

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu      sync.Mutex
	cond    *sync.Cond // signaled on pending push and on Close
	pending []*job     // FIFO of queued jobs; its length IS the admission gauge
	closed  bool
	nextID  int
	jobs    map[string]*job
}

// New starts a manager with cfg.Workers worker goroutines.
func New(cfg Config) *Manager {
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:     cfg,
		baseCtx: ctx,
		stop:    cancel,
		jobs:    map[string]*job{},
		nextID:  1,
	}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Close cancels every queued and running job, waits for the workers to
// wind down, and rejects further submissions. Retained results stay
// readable until the manager is dropped.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	// Cancel queued jobs in place so their waiters release immediately;
	// running jobs are canceled through the base context below.
	for _, j := range m.pending {
		j.canceled = true
		m.finishLocked(j, nil, context.Canceled)
	}
	m.pending = nil
	m.cond.Broadcast()
	m.mu.Unlock()
	m.stop()
	m.wg.Wait()
}

// Submit enqueues a task and returns its job ID. It never blocks: a full
// queue fails with ErrQueueFull, a closed manager with ErrClosed.
func (m *Manager) Submit(kind string, task Task) (string, error) {
	return m.submit(kind, task, false)
}

// SubmitTransient is Submit for jobs whose only consumer is a waiter on
// the line (the synchronous wrapper endpoints): the job is dropped from
// the registry as soon as its outcome is consumed through
// Result/WaitResult, instead of sitting in retention for the full TTL
// with nobody left to fetch it. An abandoned transient job (the waiter
// never read the outcome) still expires through the normal TTL/LRU
// policy.
func (m *Manager) SubmitTransient(kind string, task Task) (string, error) {
	return m.submit(kind, task, true)
}

func (m *Manager) submit(kind string, task Task, transient bool) (string, error) {
	if task == nil {
		return "", errors.New("jobs: nil task")
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return "", ErrClosed
	}
	m.pruneLocked()
	if len(m.pending) >= m.cfg.QueueDepth {
		m.mu.Unlock()
		return "", fmt.Errorf("%w (depth %d)", ErrQueueFull, m.cfg.QueueDepth)
	}
	now := m.cfg.now()
	ctx, cancel := context.WithCancel(m.baseCtx)
	j := &job{
		id:          strconv.Itoa(m.nextID),
		kind:        kind,
		task:        task,
		transient:   transient,
		ctx:         ctx,
		cancel:      cancel,
		state:       StateQueued,
		submittedAt: now,
		lastTouch:   now,
		done:        make(chan struct{}),
	}
	m.nextID++
	m.jobs[j.id] = j
	m.pending = append(m.pending, j)
	m.cond.Signal()
	m.mu.Unlock()
	return j.id, nil
}

// Get returns a job's status snapshot.
func (m *Manager) Get(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pruneLocked()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return statusLocked(j), nil
}

// List returns status snapshots of every known job (queued, running and
// retained terminal ones), newest submission first.
func (m *Manager) List() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pruneLocked()
	out := make([]Status, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, statusLocked(j))
	}
	sort.Slice(out, func(i, k int) bool {
		a, _ := strconv.Atoi(out[i].ID)
		b, _ := strconv.Atoi(out[k].ID)
		return a > b
	})
	return out
}

// Cancel requests cancellation. A queued job is canceled in place and
// never runs; a running job has its context canceled and reaches the
// canceled state when its task returns. Canceling a terminal job is
// ErrDone, an unknown one ErrNotFound.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return ErrNotFound
	}
	switch {
	case j.state.Terminal():
		return ErrDone
	case j.state == StateQueued:
		// Canceled in place AND removed from the pending queue, so the
		// admission slot frees immediately (a canceled submission must
		// not keep causing ErrQueueFull).
		j.canceled = true
		for i, p := range m.pending {
			if p == j {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				break
			}
		}
		m.finishLocked(j, nil, context.Canceled)
	default: // running
		j.canceled = true
		j.cancel()
	}
	return nil
}

// Wait blocks until the job reaches a terminal state (returning its
// final status) or ctx is canceled (returning ctx.Err()). Waiting does
// not consume the result — Result remains available afterwards.
func (m *Manager) Wait(ctx context.Context, id string) (Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return Status{}, ErrNotFound
	}
	done := j.done
	m.mu.Unlock()
	select {
	case <-ctx.Done():
		return Status{}, ctx.Err()
	case <-done:
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// Snapshot from the job pointer: valid even if retention pruned the
	// ID from the map while we were waiting.
	return statusLocked(j), nil
}

// WaitResult is Wait followed by a Result fetch that cannot lose the
// race against retention: the outcome is read from the job record the
// waiter already holds, so a concurrent TTL expiry or LRU eviction of
// the ID never turns a finished job into ErrNotFound. Like Result, a
// failed or canceled job returns its stored error with identity
// preserved.
func (m *Manager) WaitResult(ctx context.Context, id string) (any, Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, Status{}, ErrNotFound
	}
	done := j.done
	m.mu.Unlock()
	select {
	case <-ctx.Done():
		return nil, Status{}, ctx.Err()
	case <-done:
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st := statusLocked(j)
	if j.transient {
		delete(m.jobs, j.id) // consumed: nobody comes back for it
	}
	if j.err != nil {
		return nil, st, j.err
	}
	return j.result, st, nil
}

// Result returns the value a done job's task produced, along with the
// final status. A failed or canceled job returns its stored error (so
// callers can errors.Is against domain sentinels); a job that has not
// finished returns ErrNotDone. Fetching refreshes the job's LRU
// position.
func (m *Manager) Result(id string) (any, Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pruneLocked()
	j, ok := m.jobs[id]
	if !ok {
		return nil, Status{}, ErrNotFound
	}
	if !j.state.Terminal() {
		return nil, statusLocked(j), ErrNotDone
	}
	j.lastTouch = m.cfg.now()
	st := statusLocked(j)
	if j.transient {
		delete(m.jobs, j.id) // consumed: nobody comes back for it
	}
	if j.err != nil {
		return nil, st, j.err
	}
	return j.result, st, nil
}

// Subscribe returns a channel of status snapshots for one job: the
// current status immediately, then one per state or progress change,
// closed after the terminal snapshot. The returned cancel function
// detaches the subscriber (safe to call multiple times); always call it,
// or the channel leaks until the job finishes. Slow subscribers never
// block the manager — intermediate snapshots are dropped oldest-first,
// the terminal one is always delivered.
func (m *Manager) Subscribe(id string) (<-chan Status, func(), error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, nil, ErrNotFound
	}
	ch := make(chan Status, 16)
	ch <- statusLocked(j)
	if j.state.Terminal() {
		close(ch)
		return ch, func() {}, nil
	}
	j.subs = append(j.subs, ch)
	cancel := func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		for i, c := range j.subs {
			if c == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				close(ch)
				break
			}
		}
	}
	return ch, cancel, nil
}

// subscribers reports how many subscribers a job currently has (test
// observability).
func (m *Manager) subscribers(id string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return 0
	}
	return len(j.subs)
}

// worker pulls queued jobs until manager shutdown. Cancellation of a
// queued job removes it from the pending queue directly, so a popped
// job is always ready to run.
func (m *Manager) worker() {
	defer m.wg.Done()
	m.mu.Lock()
	for {
		for len(m.pending) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.pending) == 0 { // closed and drained
			m.mu.Unlock()
			return
		}
		j := m.pending[0]
		m.pending = m.pending[1:]
		m.mu.Unlock()
		m.run(j)
		m.mu.Lock()
	}
}

// run executes one job through its lifecycle.
func (m *Manager) run(j *job) {
	m.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	t := m.cfg.now()
	j.startedAt = &t
	task := j.task // captured under mu; finishLocked clears the field
	m.notifyLocked(j)
	m.mu.Unlock()

	val, err := task(j.ctx, func(p Progress) { m.setProgress(j, p) })

	m.mu.Lock()
	m.finishLocked(j, val, err)
	m.mu.Unlock()
}

// finishLocked moves a job to its terminal state, releases waiters and
// subscribers, and enters it into retention. Caller holds m.mu.
func (m *Manager) finishLocked(j *job, val any, err error) {
	t := m.cfg.now()
	j.finishedAt = &t
	j.lastTouch = t
	// Drop the task closure: it can pin arbitrarily large caller state
	// (result sinks, ResponseWriters) that must not live for the whole
	// retention TTL.
	j.task = nil
	switch {
	case err == nil:
		j.state = StateDone
		j.result = val
	case j.canceled || j.ctx.Err() != nil:
		j.state = StateCanceled
		j.err = err
	default:
		j.state = StateFailed
		j.err = err
	}
	j.cancel() // release the job context's resources
	close(j.done)
	m.notifyLocked(j)
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	m.pruneLocked()
}

// setProgress records a progress sample and fans it out.
func (m *Manager) setProgress(j *job, p Progress) {
	m.mu.Lock()
	if j.state == StateRunning {
		j.progress = p
		m.notifyLocked(j)
	}
	m.mu.Unlock()
}

// notifyLocked pushes the current snapshot to every subscriber without
// ever blocking: a full subscriber buffer drops its oldest snapshot to
// make room, so the latest state always lands. Caller holds m.mu.
func (m *Manager) notifyLocked(j *job) {
	if len(j.subs) == 0 {
		return
	}
	st := statusLocked(j)
	for _, ch := range j.subs {
		select {
		case ch <- st:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- st:
			default:
			}
		}
	}
}

// pruneLocked evicts terminal jobs past their TTL, then applies the LRU
// cap over the remainder. Caller holds m.mu.
func (m *Manager) pruneLocked() {
	now := m.cfg.now()
	var terminal []*job
	for id, j := range m.jobs {
		if !j.state.Terminal() {
			continue
		}
		if j.finishedAt != nil && now.Sub(*j.finishedAt) >= m.cfg.ResultTTL {
			delete(m.jobs, id)
			continue
		}
		terminal = append(terminal, j)
	}
	if len(terminal) <= m.cfg.MaxResults {
		return
	}
	sort.Slice(terminal, func(i, k int) bool {
		return terminal[i].lastTouch.Before(terminal[k].lastTouch)
	})
	for _, j := range terminal[:len(terminal)-m.cfg.MaxResults] {
		delete(m.jobs, j.id)
	}
}

// statusLocked snapshots a job. Caller holds m.mu.
func statusLocked(j *job) Status {
	st := Status{
		ID:          j.id,
		Kind:        j.kind,
		State:       j.state,
		Progress:    j.progress,
		SubmittedAt: j.submittedAt,
	}
	if j.startedAt != nil {
		t := *j.startedAt
		st.StartedAt = &t
	}
	if j.finishedAt != nil {
		t := *j.finishedAt
		st.FinishedAt = &t
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}
