package jobs

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"
)

// blockingTask returns a task that parks until release is closed (or its
// context is canceled), then returns val.
func blockingTask(release <-chan struct{}, val any) Task {
	return func(ctx context.Context, _ func(Progress)) (any, error) {
		select {
		case <-release:
			return val, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// instantTask returns val immediately.
func instantTask(val any) Task {
	return func(context.Context, func(Progress)) (any, error) { return val, nil }
}

func TestLifecycleDone(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	id, err := m.Submit("extract", instantTask(42))
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("state = %s, want done", st.State)
	}
	if st.StartedAt == nil || st.FinishedAt == nil {
		t.Fatalf("missing timestamps: %+v", st)
	}
	val, st2, err := m.Result(id)
	if err != nil || val != 42 || st2.State != StateDone {
		t.Fatalf("Result = %v, %v, %v", val, st2, err)
	}
}

func TestLifecycleFailed(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	sentinel := errors.New("boom")
	id, _ := m.Submit("extract", func(context.Context, func(Progress)) (any, error) {
		return nil, sentinel
	})
	st, err := m.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || st.Error != "boom" {
		t.Fatalf("status = %+v", st)
	}
	// Result surfaces the stored error for errors.Is branching.
	if _, _, err := m.Result(id); !errors.Is(err, sentinel) {
		t.Fatalf("Result err = %v, want the task's error", err)
	}
}

// TestQueueFullRejectsWithoutBlocking: with one worker parked and the
// queue at depth, further submissions fail fast with ErrQueueFull.
func TestQueueFullRejectsWithoutBlocking(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 1})
	defer m.Close()
	release := make(chan struct{})
	defer close(release)

	running, _ := m.Submit("extract", blockingTask(release, nil))
	// Give the worker a moment to pick up the first job so the queue
	// slot is truly free for the second.
	waitState(t, m, running, StateRunning)
	if _, err := m.Submit("extract", blockingTask(release, nil)); err != nil {
		t.Fatalf("queued submission rejected: %v", err)
	}
	start := time.Now()
	_, err := m.Submit("extract", blockingTask(release, nil))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("rejection took %s — Submit must not block", d)
	}
}

// TestCancelWhileQueued: a queued job is canceled in place and its task
// never runs.
func TestCancelWhileQueued(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 2})
	defer m.Close()
	release := make(chan struct{})
	defer close(release)

	running, _ := m.Submit("extract", blockingTask(release, nil))
	waitState(t, m, running, StateRunning)
	ran := false
	queued, _ := m.Submit("extract", func(context.Context, func(Progress)) (any, error) {
		ran = true
		return nil, nil
	})
	if err := m.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	st, err := m.Wait(context.Background(), queued)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	if st.StartedAt != nil {
		t.Fatal("canceled-while-queued job must never start")
	}
	// Drain the pipeline: the worker must skip the canceled job.
	if ran {
		t.Fatal("canceled job's task ran")
	}
	if _, _, err := m.Result(queued); !errors.Is(err, context.Canceled) {
		t.Fatalf("Result err = %v, want context.Canceled", err)
	}
}

// TestCancelWhileRunning: cancel propagates through the job context into
// the task, which wound down with ctx.Err() → canceled state.
func TestCancelWhileRunning(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	release := make(chan struct{}) // never closed: only cancel stops the task
	id, _ := m.Submit("extract", blockingTask(release, nil))
	waitState(t, m, id, StateRunning)
	if err := m.Cancel(id); err != nil {
		t.Fatal(err)
	}
	st, err := m.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	// Canceling a terminal job is ErrDone.
	if err := m.Cancel(id); !errors.Is(err, ErrDone) {
		t.Fatalf("second cancel = %v, want ErrDone", err)
	}
}

// TestCancelQueuedFreesAdmissionSlot: canceling a queued job releases
// its queue slot immediately — the next submission is admitted even
// though the worker is still busy.
func TestCancelQueuedFreesAdmissionSlot(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 1})
	defer m.Close()
	release := make(chan struct{})
	defer close(release)
	running, _ := m.Submit("extract", blockingTask(release, nil))
	waitState(t, m, running, StateRunning)
	queued, err := m.Submit("extract", blockingTask(release, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("extract", blockingTask(release, nil)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("pre-cancel submit err = %v, want ErrQueueFull", err)
	}
	if err := m.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("extract", blockingTask(release, nil)); err != nil {
		t.Fatalf("post-cancel submit rejected: %v — canceled job still holds the slot", err)
	}
}

func TestCancelUnknown(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	if err := m.Cancel("404"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

// TestResultTTLEviction: a finished job is fetchable until the TTL
// passes on the fake clock, then evicted.
func TestResultTTLEviction(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_300_000_000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	m := New(Config{Workers: 1, ResultTTL: time.Minute, now: clock})
	defer m.Close()
	id, _ := m.Submit("extract", instantTask("v"))
	if _, err := m.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Result(id); err != nil {
		t.Fatalf("fresh result: %v", err)
	}
	mu.Lock()
	now = now.Add(59 * time.Second)
	mu.Unlock()
	if _, _, err := m.Result(id); err != nil {
		t.Fatalf("pre-TTL result: %v", err)
	}
	mu.Lock()
	now = now.Add(2 * time.Second)
	mu.Unlock()
	if _, _, err := m.Result(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-TTL result err = %v, want ErrNotFound", err)
	}
	if _, err := m.Get(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-TTL get err = %v, want ErrNotFound", err)
	}
}

// TestResultLRUEviction: beyond MaxResults the least recently fetched
// terminal job is evicted first.
func TestResultLRUEviction(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_300_000_000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		// Advance a nanosecond per read so every touch is ordered.
		now = now.Add(1)
		return now
	}
	m := New(Config{Workers: 1, MaxResults: 2, now: clock})
	defer m.Close()
	var ids []string
	for i := 0; i < 2; i++ {
		id, _ := m.Submit("extract", instantTask(i))
		if _, err := m.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Touch the older job so the newer one becomes LRU.
	if _, _, err := m.Result(ids[0]); err != nil {
		t.Fatal(err)
	}
	id3, _ := m.Submit("extract", instantTask(3))
	if _, err := m.Wait(context.Background(), id3); err != nil {
		t.Fatal(err)
	}
	// The cap is 2: ids[1] (least recently touched) must be gone, ids[0]
	// and id3 retained.
	if _, _, err := m.Result(ids[1]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("LRU job err = %v, want ErrNotFound", err)
	}
	if _, _, err := m.Result(ids[0]); err != nil {
		t.Fatalf("recently touched job evicted: %v", err)
	}
	if _, _, err := m.Result(id3); err != nil {
		t.Fatalf("newest job evicted: %v", err)
	}
}

// TestTransientSubmit: a transient job delivers its outcome to the
// waiter already on the line but never enters retention — no ID is left
// behind to fetch it with.
func TestTransientSubmit(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	id, err := m.SubmitTransient("extract", instantTask("v"))
	if err != nil {
		t.Fatal(err)
	}
	val, st, err := m.WaitResult(context.Background(), id)
	if err != nil || val != "v" || st.State != StateDone {
		t.Fatalf("WaitResult = %v, %v, %v", val, st, err)
	}
	if _, _, err := m.Result(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("transient job retained: err = %v, want ErrNotFound", err)
	}
	if _, err := m.Get(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("transient job listed after finish: %v", err)
	}
}

// TestWaitResultSurvivesEviction: a waiter already blocked in
// WaitResult receives the outcome even when retention evicts the job's
// ID right after the terminal transition — the waiter reads the job
// record it holds, not the registry.
func TestWaitResultSurvivesEviction(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_300_000_000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	m := New(Config{Workers: 1, ResultTTL: time.Minute, now: clock})
	defer m.Close()
	gate := make(chan struct{})
	id, _ := m.Submit("extract", func(ctx context.Context, _ func(Progress)) (any, error) {
		<-gate
		return "kept", nil
	})
	waitState(t, m, id, StateRunning)
	type outcome struct {
		val any
		st  Status
		err error
	}
	got := make(chan outcome, 1)
	entered := make(chan struct{})
	go func() {
		close(entered)
		val, st, err := m.WaitResult(context.Background(), id)
		got <- outcome{val, st, err}
	}()
	// The waiter's registry lookup cannot fail while the job is running
	// (running jobs are never pruned); give the goroutine ample time to
	// get past it before letting the job finish and evicting the ID.
	<-entered
	time.Sleep(100 * time.Millisecond)
	close(gate)
	if _, err := m.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	if _, err := m.Get(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("job survived TTL: %v", err)
	}
	out := <-got
	if out.err != nil || out.val != "kept" || out.st.State != StateDone {
		t.Fatalf("WaitResult across eviction = %v, %v, %v", out.val, out.st, out.err)
	}
}

// TestResultNotDone: fetching an unfinished job is ErrNotDone, not a
// phantom result.
func TestResultNotDone(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	release := make(chan struct{})
	defer close(release)
	id, _ := m.Submit("extract", blockingTask(release, nil))
	if _, _, err := m.Result(id); !errors.Is(err, ErrNotDone) {
		t.Fatalf("err = %v, want ErrNotDone", err)
	}
}

// TestWaitHonorsContext: Wait returns promptly when the caller's context
// dies while the job is still running.
func TestWaitHonorsContext(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	release := make(chan struct{})
	defer close(release)
	id, _ := m.Submit("extract", blockingTask(release, nil))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := m.Wait(ctx, id); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// TestProgressAndSubscribe: progress samples reach Status and the
// subscriber stream, which closes after the terminal snapshot.
func TestProgressAndSubscribe(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	step := make(chan struct{})
	id, _ := m.Submit("extract", func(ctx context.Context, report func(Progress)) (any, error) {
		report(Progress{Phase: "candidates", Candidates: 100})
		<-step
		report(Progress{Phase: "mine-flows", TuningRound: 2, Itemsets: 5})
		return "ok", nil
	})
	ch, cancel, err := m.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	close(step)
	var last Status
	sawProgress := false
	for st := range ch {
		if st.Progress.Phase == "mine-flows" && st.Progress.TuningRound == 2 {
			sawProgress = true
		}
		last = st
	}
	if !sawProgress {
		t.Fatal("mining progress never reached the subscriber")
	}
	if last.State != StateDone {
		t.Fatalf("terminal snapshot state = %s, want done", last.State)
	}
	st, _ := m.Get(id)
	if st.Progress.Phase != "mine-flows" || st.Progress.Itemsets != 5 {
		t.Fatalf("status progress = %+v", st.Progress)
	}
}

// TestSubscribeTerminal: subscribing to a finished job yields exactly
// its final snapshot, then the channel closes.
func TestSubscribeTerminal(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	id, _ := m.Submit("extract", instantTask(nil))
	if _, err := m.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := m.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	st, ok := <-ch
	if !ok || st.State != StateDone {
		t.Fatalf("first = %v/%v", st, ok)
	}
	if _, ok := <-ch; ok {
		t.Fatal("channel must close after the terminal snapshot")
	}
}

// TestUnsubscribeDetaches: a canceled subscription is removed so the
// manager stops fanning out to it.
func TestUnsubscribeDetaches(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	release := make(chan struct{})
	defer close(release)
	id, _ := m.Submit("extract", blockingTask(release, nil))
	_, cancel, err := m.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	if n := m.subscribers(id); n != 1 {
		t.Fatalf("subscribers = %d, want 1", n)
	}
	cancel()
	if n := m.subscribers(id); n != 0 {
		t.Fatalf("subscribers after cancel = %d, want 0", n)
	}
	cancel() // idempotent
}

// TestCloseCancelsEverything: Close cancels queued and running jobs and
// rejects later submissions.
func TestCloseCancelsEverything(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 4})
	release := make(chan struct{})
	defer close(release)
	running, _ := m.Submit("extract", blockingTask(release, nil))
	waitState(t, m, running, StateRunning)
	queued, _ := m.Submit("extract", blockingTask(release, nil))
	m.Close()
	for _, id := range []string{running, queued} {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateCanceled {
			t.Fatalf("job %s state = %s, want canceled", id, st.State)
		}
	}
	if _, err := m.Submit("extract", instantTask(nil)); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit err = %v, want ErrClosed", err)
	}
}

// TestListOrder: List returns newest submission first and includes all
// lifecycle states.
func TestListOrder(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	release := make(chan struct{})
	defer close(release)
	var ids []string
	for i := 0; i < 3; i++ {
		id, err := m.Submit("extract", blockingTask(release, i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	list := m.List()
	if len(list) != 3 {
		t.Fatalf("%d jobs listed", len(list))
	}
	for i, st := range list {
		if want := ids[len(ids)-1-i]; st.ID != want {
			t.Fatalf("list[%d] = %s, want %s", i, st.ID, want)
		}
	}
}

// TestStressManyJobs floods the manager well past the worker count and
// checks every job lands done with its own result.
func TestStressManyJobs(t *testing.T) {
	m := New(Config{Workers: 4, QueueDepth: 64})
	defer m.Close()
	const n = 48
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		id, err := m.Submit("extract", instantTask(i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = id
	}
	for i, id := range ids {
		if _, err := m.Wait(context.Background(), id); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		val, st, err := m.Result(id)
		if err != nil || st.State != StateDone {
			t.Fatalf("job %d: %v %v", i, st, err)
		}
		if val != i {
			t.Fatalf("job %d returned %v", i, val)
		}
	}
}

// waitState polls until the job reaches the state (or fails the test).
func waitState(t *testing.T, m *Manager, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	st, _ := m.Get(id)
	t.Fatalf("job %s never reached %s (state %s)", id, want, st.State)
}

// TestIDsAreSequential pins the ID scheme the HTTP layer exposes.
func TestIDsAreSequential(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	prev := 0
	for i := 0; i < 3; i++ {
		id, err := m.Submit("extract", instantTask(nil))
		if err != nil {
			t.Fatal(err)
		}
		n, err := strconv.Atoi(id)
		if err != nil || n <= prev {
			t.Fatalf("id %q after %d", id, prev)
		}
		prev = n
	}
}

// TestSubmitNilTask rejects a nil task up front.
func TestSubmitNilTask(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	if _, err := m.Submit("extract", nil); err == nil {
		t.Fatal("nil task must be rejected")
	}
}

// Example of the submit → wait → result flow.
func Example() {
	m := New(Config{Workers: 2})
	defer m.Close()
	id, _ := m.Submit("extract", func(ctx context.Context, report func(Progress)) (any, error) {
		report(Progress{Phase: "candidates"})
		return "ranked itemsets", nil
	})
	st, _ := m.Wait(context.Background(), id)
	val, _, _ := m.Result(id)
	fmt.Println(st.State, val)
	// Output: done ranked itemsets
}
