package nffilter

import (
	"fmt"
	"strconv"

	"repro/internal/flow"
)

// Filter is a parsed, immutable filter expression.
type Filter struct {
	root Node
	src  string
}

// Parse compiles a filter expression. The grammar, in decreasing binding
// strength:
//
//	primary := '(' expr ')' | 'not' primary | predicate
//	conj    := primary { 'and' primary }
//	expr    := conj { 'or' conj }
//
// with predicates:
//
//	[src|dst] ip ADDR          [src|dst] net CIDR
//	[src|dst] port [CMP] NUM   proto NAME|NUM
//	packets CMP NUM            bytes CMP NUM
//	duration CMP NUM           router [CMP] NUM
//	flags LETTERS              any
func Parse(src string) (*Filter, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	root, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, p.errf(t.pos, "unexpected %s %q after expression", t.kind, t.text)
	}
	return &Filter{root: root, src: src}, nil
}

// MustParse is Parse that panics on error, for constant filters in tests
// and examples.
func MustParse(src string) *Filter {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

// FromNode wraps a programmatically built AST in a Filter. The extraction
// engine uses this to turn itemsets into drill-down filters without going
// through text.
func FromNode(n Node) *Filter {
	if n == nil {
		n = Any{}
	}
	return &Filter{root: n, src: n.String()}
}

// Match reports whether the record satisfies the filter.
func (f *Filter) Match(r *flow.Record) bool { return f.root.Eval(r) }

// Root returns the filter's AST root.
func (f *Filter) Root() Node { return f.root }

// String renders the filter back to parseable syntax.
func (f *Filter) String() string { return f.root.String() }

type parser struct {
	src  string
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errf(pos int, format string, args ...any) error {
	return &SyntaxError{Input: p.src, Offset: pos, Msg: fmt.Sprintf(format, args...)}
}

// acceptWord consumes the next token when it is the given keyword.
func (p *parser) acceptWord(word string) bool {
	if t := p.peek(); t.kind == tokWord && t.text == word {
		p.advance()
		return true
	}
	return false
}

func (p *parser) parseExpr() (Node, error) {
	left, err := p.parseConj()
	if err != nil {
		return nil, err
	}
	kids := []Node{left}
	for p.acceptWord("or") {
		right, err := p.parseConj()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return &Or{Kids: kids}, nil
}

func (p *parser) parseConj() (Node, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	kids := []Node{left}
	for p.acceptWord("and") {
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return &And{Kids: kids}, nil
}

func (p *parser) parsePrimary() (Node, error) {
	t := p.peek()
	switch {
	case t.kind == tokLParen:
		p.advance()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if closer := p.advance(); closer.kind != tokRParen {
			return nil, p.errf(closer.pos, "expected ')', got %s", closer.kind)
		}
		return inner, nil
	case t.kind == tokWord && t.text == "not":
		p.advance()
		inner, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &Not{Kid: inner}, nil
	case t.kind == tokWord:
		return p.parsePredicate()
	default:
		return nil, p.errf(t.pos, "expected predicate, got %s", t.kind)
	}
}

func (p *parser) parsePredicate() (Node, error) {
	t := p.advance() // the keyword word
	dir := DirEither
	switch t.text {
	case "src":
		dir = DirSrc
		t = p.advance()
	case "dst":
		dir = DirDst
		t = p.advance()
	}
	if t.kind != tokWord {
		return nil, p.errf(t.pos, "expected field keyword, got %s", t.kind)
	}
	switch t.text {
	case "any":
		if dir != DirEither {
			return nil, p.errf(t.pos, "'any' takes no direction")
		}
		return Any{}, nil
	case "ip":
		a := p.advance()
		if a.kind != tokAddr {
			return nil, p.errf(a.pos, "expected IPv4 address after 'ip', got %s", a.kind)
		}
		ip, err := flow.ParseIP(a.text)
		if err != nil {
			return nil, p.errf(a.pos, "%v", err)
		}
		return &IPMatch{Dir: dir, Addr: ip}, nil
	case "net":
		a := p.advance()
		if a.kind != tokCIDR && a.kind != tokAddr {
			return nil, p.errf(a.pos, "expected CIDR prefix after 'net', got %s", a.kind)
		}
		pref, err := flow.ParsePrefix(a.text)
		if err != nil {
			return nil, p.errf(a.pos, "%v", err)
		}
		return &NetMatch{Dir: dir, Prefix: pref}, nil
	case "port":
		op, value, err := p.parseCmpNumber(65535)
		if err != nil {
			return nil, err
		}
		return &PortMatch{Dir: dir, Op: op, Port: uint16(value)}, nil
	case "proto":
		if dir != DirEither {
			return nil, p.errf(t.pos, "'proto' takes no direction")
		}
		a := p.advance()
		if a.kind != tokWord && a.kind != tokNumber {
			return nil, p.errf(a.pos, "expected protocol after 'proto', got %s", a.kind)
		}
		proto, err := flow.ParseProtocol(a.text)
		if err != nil {
			return nil, p.errf(a.pos, "%v", err)
		}
		return &ProtoMatch{Proto: proto}, nil
	case "packets", "bytes", "duration", "router":
		if dir != DirEither {
			return nil, p.errf(t.pos, "%q takes no direction", t.text)
		}
		var field CounterField
		switch t.text {
		case "packets":
			field = FieldPackets
		case "bytes":
			field = FieldBytes
		case "duration":
			field = FieldDuration
		case "router":
			field = FieldRouter
		}
		op, value, err := p.parseCmpNumber(1<<63 - 1)
		if err != nil {
			return nil, err
		}
		return &CounterMatch{Field: field, Op: op, Value: value}, nil
	case "flags":
		if dir != DirEither {
			return nil, p.errf(t.pos, "'flags' takes no direction")
		}
		a := p.advance()
		// "flags 0" denotes the empty mask (matches every record); letter
		// strings denote required flag bits.
		if a.kind == tokNumber && a.text == "0" {
			return &FlagsMatch{Mask: 0}, nil
		}
		if a.kind != tokWord {
			return nil, p.errf(a.pos, "expected flag letters after 'flags', got %s", a.kind)
		}
		mask, ok := parseFlags(a.text)
		if !ok {
			return nil, p.errf(a.pos, "invalid flag letters %q (use U A P R S F)", a.text)
		}
		return &FlagsMatch{Mask: mask}, nil
	default:
		return nil, p.errf(t.pos, "unknown field %q", t.text)
	}
}

// parseCmpNumber parses an optional comparison operator (default '=')
// followed by a number bounded by max.
func (p *parser) parseCmpNumber(max uint64) (CmpOp, uint64, error) {
	op := CmpEq
	if t := p.peek(); t.kind == tokCmp {
		p.advance()
		var ok bool
		op, ok = parseCmp(t.text)
		if !ok {
			return 0, 0, p.errf(t.pos, "invalid comparison %q", t.text)
		}
	}
	t := p.advance()
	if t.kind != tokNumber {
		return 0, 0, p.errf(t.pos, "expected number, got %s", t.kind)
	}
	v, err := strconv.ParseUint(t.text, 10, 64)
	if err != nil || v > max {
		return 0, 0, p.errf(t.pos, "number %q out of range (max %d)", t.text, max)
	}
	return op, v, nil
}
