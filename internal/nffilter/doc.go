// Package nffilter implements the nfdump-style flow filter language used by
// the store and the extraction GUI: expressions such as
//
//	src ip 10.191.64.165 and dst port 80
//	(proto udp and packets > 1000000) or dst net 10.13.0.0/16
//	not flags S
//
// are parsed into an AST and compiled into predicates over flow records.
// The paper's system is backed by NfDump; this package is its query-language
// substitute, and it is also how extracted itemsets are turned back into
// flow drill-down queries for the operator.
package nffilter
