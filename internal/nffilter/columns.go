package nffilter

import "strings"

// Column projection: a filter AST can report exactly which record fields
// its evaluation touches, so a columnar storage engine decodes only those
// columns. The analysis is conservative — an unknown node type claims
// every column, which costs decode work but never correctness.

// Column identifies one field of a flow.Record for projection purposes.
// The constants enumerate the record's twelve on-disk columns in their
// canonical storage order.
type Column uint8

// Record columns, in canonical storage order.
const (
	ColStart Column = iota
	ColDur
	ColSrcIP
	ColDstIP
	ColSrcPort
	ColDstPort
	ColProto
	ColFlags
	ColRouter
	ColAnno
	ColPackets
	ColBytes
	// NumColumns is the number of record columns.
	NumColumns
)

// String names the column after its flow.Record field.
func (c Column) String() string {
	names := [...]string{"Start", "Dur", "SrcIP", "DstIP", "SrcPort", "DstPort",
		"Proto", "Flags", "Router", "Anno", "Packets", "Bytes"}
	if int(c) < len(names) {
		return names[c]
	}
	return "Column?"
}

// ColumnSet is a bitmask of record columns.
type ColumnSet uint16

// AllColumns holds every record column.
const AllColumns ColumnSet = 1<<NumColumns - 1

// Has reports whether the set contains c.
func (s ColumnSet) Has(c Column) bool { return s&(1<<c) != 0 }

// With returns the set extended by c.
func (s ColumnSet) With(c Column) ColumnSet { return s | 1<<c }

// String renders the set as a +-joined column list ("SrcIP+DstPort").
func (s ColumnSet) String() string {
	if s == 0 {
		return "none"
	}
	var parts []string
	for c := Column(0); c < NumColumns; c++ {
		if s.Has(c) {
			parts = append(parts, c.String())
		}
	}
	return strings.Join(parts, "+")
}

// Requires reports the set of record columns evaluating n may read. A nil
// node requires nothing; an unrecognized node type (or counter field)
// conservatively requires every column, so projection can never change
// what a filter matches.
func Requires(n Node) ColumnSet {
	switch t := n.(type) {
	case nil:
		return 0
	case *And:
		var s ColumnSet
		for _, k := range t.Kids {
			s |= Requires(k)
		}
		return s
	case *Or:
		var s ColumnSet
		for _, k := range t.Kids {
			s |= Requires(k)
		}
		return s
	case *Not:
		return Requires(t.Kid)
	case Any, *Any:
		return 0
	case *IPMatch:
		return dirCols(t.Dir, ColSrcIP, ColDstIP)
	case *NetMatch:
		return dirCols(t.Dir, ColSrcIP, ColDstIP)
	case *PortMatch:
		return dirCols(t.Dir, ColSrcPort, ColDstPort)
	case *ProtoMatch:
		return ColumnSet(0).With(ColProto)
	case *CounterMatch:
		switch t.Field {
		case FieldPackets:
			return ColumnSet(0).With(ColPackets)
		case FieldBytes:
			return ColumnSet(0).With(ColBytes)
		case FieldDuration:
			return ColumnSet(0).With(ColDur)
		case FieldRouter:
			return ColumnSet(0).With(ColRouter)
		default:
			return AllColumns
		}
	case *FlagsMatch:
		return ColumnSet(0).With(ColFlags)
	default:
		return AllColumns
	}
}

// dirCols resolves a direction qualifier to the column(s) it reads.
func dirCols(d Dir, src, dst Column) ColumnSet {
	switch d {
	case DirSrc:
		return ColumnSet(0).With(src)
	case DirDst:
		return ColumnSet(0).With(dst)
	default:
		return ColumnSet(0).With(src).With(dst)
	}
}

// Columns reports the record columns evaluating the filter may read. A nil
// filter matches everything and reads nothing.
func (f *Filter) Columns() ColumnSet {
	if f == nil {
		return 0
	}
	return Requires(f.root)
}
