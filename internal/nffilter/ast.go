package nffilter

import (
	"fmt"
	"strings"

	"repro/internal/flow"
)

// Node is a filter AST node. Nodes evaluate against a flow record and can
// render themselves back to parseable filter syntax (Parse(n.String()) is
// semantically equal to n — a property the tests check).
type Node interface {
	// Eval reports whether the record matches.
	Eval(r *flow.Record) bool
	// String renders the node in filter syntax.
	String() string
}

// Dir selects which endpoint(s) of a record an address/port predicate
// inspects.
type Dir int

// Direction qualifiers: nfdump's "src", "dst", or unqualified (either side).
const (
	DirEither Dir = iota
	DirSrc
	DirDst
)

func (d Dir) prefix() string {
	switch d {
	case DirSrc:
		return "src "
	case DirDst:
		return "dst "
	default:
		return ""
	}
}

// CmpOp is a numeric comparison operator.
type CmpOp int

// Comparison operators accepted after counter fields and ports.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String renders the operator in filter syntax.
func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "="
	case CmpNe:
		return "!="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	default:
		return "?"
	}
}

func (op CmpOp) apply(a, b uint64) bool {
	switch op {
	case CmpEq:
		return a == b
	case CmpNe:
		return a != b
	case CmpLt:
		return a < b
	case CmpLe:
		return a <= b
	case CmpGt:
		return a > b
	case CmpGe:
		return a >= b
	default:
		return false
	}
}

// parseCmp maps comparison token text to an operator.
func parseCmp(text string) (CmpOp, bool) {
	switch text {
	case "=", "==":
		return CmpEq, true
	case "!=":
		return CmpNe, true
	case "<":
		return CmpLt, true
	case "<=":
		return CmpLe, true
	case ">":
		return CmpGt, true
	case ">=":
		return CmpGe, true
	}
	return 0, false
}

// And matches when every child matches. An empty And matches everything
// (it renders as "any").
type And struct{ Kids []Node }

// Eval implements Node.
func (n *And) Eval(r *flow.Record) bool {
	for _, k := range n.Kids {
		if !k.Eval(r) {
			return false
		}
	}
	return true
}

// String renders the conjunction in filter syntax.
func (n *And) String() string {
	if len(n.Kids) == 0 {
		return "any"
	}
	parts := make([]string, len(n.Kids))
	for i, k := range n.Kids {
		parts[i] = parenthesize(k, false)
	}
	return strings.Join(parts, " and ")
}

// Or matches when any child matches. An empty Or matches nothing.
type Or struct{ Kids []Node }

// Eval implements Node.
func (n *Or) Eval(r *flow.Record) bool {
	for _, k := range n.Kids {
		if k.Eval(r) {
			return true
		}
	}
	return false
}

// String renders the disjunction in filter syntax.
func (n *Or) String() string {
	if len(n.Kids) == 0 {
		return "not any"
	}
	parts := make([]string, len(n.Kids))
	for i, k := range n.Kids {
		parts[i] = parenthesize(k, true)
	}
	return strings.Join(parts, " or ")
}

// parenthesize wraps child in parentheses when needed to preserve
// precedence in rendered output (or-children of and, and and-children never
// need wrapping under or).
func parenthesize(k Node, underOr bool) string {
	if _, isOr := k.(*Or); isOr && !underOr {
		return "(" + k.String() + ")"
	}
	return k.String()
}

// Not inverts its child.
type Not struct{ Kid Node }

// Eval implements Node.
func (n *Not) Eval(r *flow.Record) bool { return !n.Kid.Eval(r) }

// String renders the negation in filter syntax.
func (n *Not) String() string {
	switch n.Kid.(type) {
	case *And, *Or:
		return "not (" + n.Kid.String() + ")"
	default:
		return "not " + n.Kid.String()
	}
}

// Any matches every record ("any" in filter syntax).
type Any struct{}

// Eval implements Node.
func (Any) Eval(*flow.Record) bool { return true }

// String implements Node.
func (Any) String() string { return "any" }

// IPMatch matches an exact address on the selected side(s).
type IPMatch struct {
	Dir  Dir
	Addr flow.IP
}

// Eval implements Node.
func (n *IPMatch) Eval(r *flow.Record) bool {
	switch n.Dir {
	case DirSrc:
		return r.SrcIP == n.Addr
	case DirDst:
		return r.DstIP == n.Addr
	default:
		return r.SrcIP == n.Addr || r.DstIP == n.Addr
	}
}

// String renders the predicate in filter syntax.
func (n *IPMatch) String() string { return n.Dir.prefix() + "ip " + n.Addr.String() }

// NetMatch matches a CIDR prefix on the selected side(s).
type NetMatch struct {
	Dir    Dir
	Prefix flow.Prefix
}

// Eval implements Node.
func (n *NetMatch) Eval(r *flow.Record) bool {
	switch n.Dir {
	case DirSrc:
		return n.Prefix.Contains(r.SrcIP)
	case DirDst:
		return n.Prefix.Contains(r.DstIP)
	default:
		return n.Prefix.Contains(r.SrcIP) || n.Prefix.Contains(r.DstIP)
	}
}

// String renders the predicate in filter syntax.
func (n *NetMatch) String() string { return n.Dir.prefix() + "net " + n.Prefix.String() }

// PortMatch compares a port on the selected side(s) with Op against Port.
// With DirEither the node matches when either side satisfies the
// comparison, mirroring nfdump.
type PortMatch struct {
	Dir  Dir
	Op   CmpOp
	Port uint16
}

// Eval implements Node.
func (n *PortMatch) Eval(r *flow.Record) bool {
	switch n.Dir {
	case DirSrc:
		return n.Op.apply(uint64(r.SrcPort), uint64(n.Port))
	case DirDst:
		return n.Op.apply(uint64(r.DstPort), uint64(n.Port))
	default:
		return n.Op.apply(uint64(r.SrcPort), uint64(n.Port)) ||
			n.Op.apply(uint64(r.DstPort), uint64(n.Port))
	}
}

// String renders the predicate in filter syntax (the = operator is
// implicit, matching nfdump).
func (n *PortMatch) String() string {
	if n.Op == CmpEq {
		return fmt.Sprintf("%sport %d", n.Dir.prefix(), n.Port)
	}
	return fmt.Sprintf("%sport %s %d", n.Dir.prefix(), n.Op, n.Port)
}

// ProtoMatch matches the IP protocol.
type ProtoMatch struct{ Proto flow.Protocol }

// Eval implements Node.
func (n *ProtoMatch) Eval(r *flow.Record) bool { return r.Proto == n.Proto }

// String renders known protocols by mnemonic and others numerically, so
// the output always reparses ("proto tcp", "proto 47").
func (n *ProtoMatch) String() string {
	switch n.Proto {
	case flow.ProtoTCP, flow.ProtoUDP, flow.ProtoICMP:
		return "proto " + n.Proto.String()
	default:
		return fmt.Sprintf("proto %d", uint8(n.Proto))
	}
}

// CounterField names a numeric record field usable in comparisons.
type CounterField int

// Counter fields accepted by the language.
const (
	FieldPackets CounterField = iota
	FieldBytes
	FieldDuration // milliseconds
	FieldRouter
)

// String names the counter field as the filter language spells it.
func (f CounterField) String() string {
	switch f {
	case FieldPackets:
		return "packets"
	case FieldBytes:
		return "bytes"
	case FieldDuration:
		return "duration"
	case FieldRouter:
		return "router"
	default:
		return "?"
	}
}

func (f CounterField) value(r *flow.Record) uint64 {
	switch f {
	case FieldPackets:
		return r.Packets
	case FieldBytes:
		return r.Bytes
	case FieldDuration:
		return uint64(r.Dur)
	case FieldRouter:
		return uint64(r.Router)
	default:
		return 0
	}
}

// CounterMatch compares a numeric record field against a constant.
type CounterMatch struct {
	Field CounterField
	Op    CmpOp
	Value uint64
}

// Eval implements Node.
func (n *CounterMatch) Eval(r *flow.Record) bool {
	return n.Op.apply(n.Field.value(r), n.Value)
}

// String renders the predicate in filter syntax.
func (n *CounterMatch) String() string {
	return fmt.Sprintf("%s %s %d", n.Field, n.Op, n.Value)
}

// FlagsMatch matches records whose cumulative TCP flags include every flag
// in Mask ("flags S" matches any record with SYN set, possibly among
// others, like nfdump).
type FlagsMatch struct{ Mask uint8 }

// Eval implements Node.
func (n *FlagsMatch) Eval(r *flow.Record) bool { return r.Flags&n.Mask == n.Mask }

// String renders the predicate in filter syntax.
func (n *FlagsMatch) String() string { return "flags " + formatFlags(n.Mask) }

// flagLetters maps nfdump flag letters to bits, in render order.
var flagLetters = []struct {
	letter byte
	bit    uint8
}{
	{'U', flow.TCPUrg}, {'A', flow.TCPAck}, {'P', flow.TCPPsh},
	{'R', flow.TCPRst}, {'S', flow.TCPSyn}, {'F', flow.TCPFin},
}

func formatFlags(mask uint8) string {
	var b strings.Builder
	for _, fl := range flagLetters {
		if mask&fl.bit != 0 {
			b.WriteByte(fl.letter)
		}
	}
	if b.Len() == 0 {
		return "0"
	}
	return b.String()
}

// parseFlags parses a flag letter string such as "SA". It accepts lower
// case because the lexer lowercases words.
func parseFlags(s string) (uint8, bool) {
	var mask uint8
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case 'u', 'U':
			mask |= flow.TCPUrg
		case 'a', 'A':
			mask |= flow.TCPAck
		case 'p', 'P':
			mask |= flow.TCPPsh
		case 'r', 'R':
			mask |= flow.TCPRst
		case 's', 'S':
			mask |= flow.TCPSyn
		case 'f', 'F':
			mask |= flow.TCPFin
		default:
			return 0, false
		}
	}
	return mask, true
}
