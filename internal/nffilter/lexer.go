package nffilter

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF    tokenKind = iota
	tokWord             // keywords and bare values: src, ip, tcp, S
	tokNumber           // 80, 1000000
	tokAddr             // 10.1.2.3
	tokCIDR             // 10.0.0.0/8
	tokLParen
	tokRParen
	tokCmp // < > <= >= = == !=
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokWord:
		return "word"
	case tokNumber:
		return "number"
	case tokAddr:
		return "address"
	case tokCIDR:
		return "prefix"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokCmp:
		return "comparison"
	default:
		return "unknown token"
	}
}

// token is one lexeme with its source position (byte offset) for error
// reporting.
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer splits a filter expression into tokens.
type lexer struct {
	src string
	pos int
}

// SyntaxError reports where parsing a filter failed and why.
type SyntaxError struct {
	Input  string
	Offset int
	Msg    string
}

// Error renders the failure with a caret-style offset.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("nffilter: %s at offset %d in %q", e.Msg, e.Offset, e.Input)
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return &SyntaxError{Input: l.src, Offset: pos, Msg: fmt.Sprintf(format, args...)}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isWordChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || isDigit(c) || c == '_' || c == '-'
}

// next returns the next token, advancing the lexer.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == '<' || c == '>' || c == '=' || c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		} else if c == '!' {
			return token{}, l.errf(start, "expected '=' after '!'")
		}
		return token{kind: tokCmp, text: l.src[start:l.pos], pos: start}, nil
	case isDigit(c):
		// Number, address, or CIDR: scan digits, dots and a slash.
		dots, slash := 0, false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if isDigit(ch) {
				l.pos++
				continue
			}
			if ch == '.' && !slash {
				dots++
				l.pos++
				continue
			}
			if ch == '/' && dots == 3 && !slash {
				slash = true
				l.pos++
				continue
			}
			break
		}
		text := l.src[start:l.pos]
		switch {
		case slash:
			return token{kind: tokCIDR, text: text, pos: start}, nil
		case dots == 3:
			return token{kind: tokAddr, text: text, pos: start}, nil
		case dots == 0:
			return token{kind: tokNumber, text: text, pos: start}, nil
		default:
			return token{}, l.errf(start, "malformed address %q", text)
		}
	case isWordChar(c):
		for l.pos < len(l.src) && isWordChar(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokWord, text: strings.ToLower(l.src[start:l.pos]), pos: start}, nil
	default:
		return token{}, l.errf(start, "unexpected character %q", string(c))
	}
}

// lexAll tokenizes the whole input; used by the parser, which wants one
// token of lookahead over a materialized slice.
func lexAll(src string) ([]token, error) {
	l := &lexer{src: src}
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
