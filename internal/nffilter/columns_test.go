package nffilter

import (
	"testing"

	"repro/internal/flow"
)

func TestRequiresPerNode(t *testing.T) {
	col := func(cs ...Column) ColumnSet {
		var s ColumnSet
		for _, c := range cs {
			s = s.With(c)
		}
		return s
	}
	cases := []struct {
		name string
		node Node
		want ColumnSet
	}{
		{"nil", nil, 0},
		{"any", Any{}, 0},
		{"any-ptr", &Any{}, 0},
		{"ip-src", &IPMatch{Dir: DirSrc, Addr: 1}, col(ColSrcIP)},
		{"ip-dst", &IPMatch{Dir: DirDst, Addr: 1}, col(ColDstIP)},
		{"ip-either", &IPMatch{Addr: 1}, col(ColSrcIP, ColDstIP)},
		{"net-src", &NetMatch{Dir: DirSrc}, col(ColSrcIP)},
		{"port-dst", &PortMatch{Dir: DirDst, Port: 53}, col(ColDstPort)},
		{"port-either", &PortMatch{Port: 53}, col(ColSrcPort, ColDstPort)},
		{"proto", &ProtoMatch{Proto: 17}, col(ColProto)},
		{"flags", &FlagsMatch{Mask: 0x02}, col(ColFlags)},
		{"packets", &CounterMatch{Field: FieldPackets, Op: CmpGt, Value: 1}, col(ColPackets)},
		{"bytes", &CounterMatch{Field: FieldBytes, Op: CmpGt, Value: 1}, col(ColBytes)},
		{"duration", &CounterMatch{Field: FieldDuration, Op: CmpGt, Value: 1}, col(ColDur)},
		{"router", &CounterMatch{Field: FieldRouter, Op: CmpEq, Value: 1}, col(ColRouter)},
		{"unknown-counter-field", &CounterMatch{Field: CounterField(99)}, AllColumns},
		{"and-union", &And{Kids: []Node{
			&ProtoMatch{Proto: 17}, &PortMatch{Dir: DirDst, Port: 53},
		}}, col(ColProto, ColDstPort)},
		{"or-union", &Or{Kids: []Node{
			&IPMatch{Dir: DirSrc, Addr: 1}, &FlagsMatch{Mask: 2},
		}}, col(ColSrcIP, ColFlags)},
		{"not-passthrough", &Not{Kid: &ProtoMatch{Proto: 6}}, col(ColProto)},
		{"unknown-node", unknownNode{}, AllColumns},
	}
	for _, c := range cases {
		if got := Requires(c.node); got != c.want {
			t.Errorf("%s: Requires = %v, want %v", c.name, got, c.want)
		}
	}
}

// unknownNode stands in for a future AST node Requires has never heard
// of — projection must go conservative, not wrong.
type unknownNode struct{}

func (unknownNode) Eval(*flow.Record) bool { return true }
func (unknownNode) String() string         { return "unknown" }

func TestFilterColumnsFromSyntax(t *testing.T) {
	cases := []struct {
		src  string
		want ColumnSet
	}{
		{"any", 0},
		{"proto udp and dst port 53", ColumnSet(0).With(ColProto).With(ColDstPort)},
		{"src ip 10.0.0.1 or dst net 10.0.0.0/8", ColumnSet(0).With(ColSrcIP).With(ColDstIP)},
		{"not flags S", ColumnSet(0).With(ColFlags)},
		{"packets > 100 and duration < 2000", ColumnSet(0).With(ColPackets).With(ColDur)},
	}
	for _, c := range cases {
		f, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		if got := f.Columns(); got != c.want {
			t.Errorf("Columns(%q) = %v, want %v", c.src, got, c.want)
		}
	}
	var nilf *Filter
	if got := nilf.Columns(); got != 0 {
		t.Errorf("nil filter Columns = %v, want none", got)
	}
}

func TestColumnSetString(t *testing.T) {
	if got := ColumnSet(0).String(); got != "none" {
		t.Errorf("empty set = %q", got)
	}
	s := ColumnSet(0).With(ColSrcIP).With(ColDstPort)
	if got := s.String(); got != "SrcIP+DstPort" {
		t.Errorf("set = %q", got)
	}
	for c := Column(0); c < NumColumns; c++ {
		if !AllColumns.Has(c) {
			t.Errorf("AllColumns missing %v", c)
		}
	}
}
