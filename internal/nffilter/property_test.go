package nffilter

import (
	"testing"

	"repro/internal/flow"
	"repro/internal/stats"
)

// randomNode builds a random filter AST of bounded depth. It exercises
// every node type the language can print.
func randomNode(rng *stats.RNG, depth int) Node {
	if depth <= 0 || rng.Bool(0.4) {
		return randomLeaf(rng)
	}
	switch rng.Intn(3) {
	case 0:
		n := 2 + rng.Intn(2)
		kids := make([]Node, n)
		for i := range kids {
			kids[i] = randomNode(rng, depth-1)
		}
		return &And{Kids: kids}
	case 1:
		n := 2 + rng.Intn(2)
		kids := make([]Node, n)
		for i := range kids {
			kids[i] = randomNode(rng, depth-1)
		}
		return &Or{Kids: kids}
	default:
		return &Not{Kid: randomNode(rng, depth-1)}
	}
}

func randomLeaf(rng *stats.RNG) Node {
	dirs := []Dir{DirEither, DirSrc, DirDst}
	ops := []CmpOp{CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe}
	switch rng.Intn(7) {
	case 0:
		return &IPMatch{Dir: dirs[rng.Intn(3)], Addr: flow.IP(rng.Uint32() % 1024)}
	case 1:
		return &NetMatch{Dir: dirs[rng.Intn(3)],
			Prefix: flow.Prefix{Addr: flow.IP(rng.Uint32()), Bits: rng.Intn(33)}.Masked()}
	case 2:
		return &PortMatch{Dir: dirs[rng.Intn(3)], Op: ops[rng.Intn(len(ops))],
			Port: uint16(rng.Intn(2048))}
	case 3:
		protos := []flow.Protocol{flow.ProtoTCP, flow.ProtoUDP, flow.ProtoICMP, flow.Protocol(47)}
		return &ProtoMatch{Proto: protos[rng.Intn(len(protos))]}
	case 4:
		fields := []CounterField{FieldPackets, FieldBytes, FieldDuration, FieldRouter}
		return &CounterMatch{Field: fields[rng.Intn(len(fields))],
			Op: ops[rng.Intn(len(ops))], Value: uint64(rng.Intn(1000))}
	case 5:
		return &FlagsMatch{Mask: uint8(rng.Intn(64))}
	default:
		return Any{}
	}
}

// randomRecord draws a record from a small value space so filters match
// with reasonable probability.
func randomRecord(rng *stats.RNG) flow.Record {
	protos := []flow.Protocol{flow.ProtoTCP, flow.ProtoUDP, flow.ProtoICMP}
	pk := uint64(rng.Intn(900) + 1)
	return flow.Record{
		Start: 100, Dur: uint32(rng.Intn(1000)),
		SrcIP: flow.IP(rng.Uint32() % 1024), DstIP: flow.IP(rng.Uint32() % 1024),
		SrcPort: uint16(rng.Intn(2048)), DstPort: uint16(rng.Intn(2048)),
		Proto: protos[rng.Intn(3)], Flags: uint8(rng.Intn(64)),
		Router: uint16(rng.Intn(8)), Packets: pk, Bytes: pk * 40,
	}
}

// TestRandomASTRoundTrip: for random ASTs, rendering to filter syntax and
// reparsing must preserve semantics over random records. This pins down
// precedence handling and parenthesization for every node combination.
func TestRandomASTRoundTrip(t *testing.T) {
	rng := stats.NewRNG(20)
	for trial := 0; trial < 300; trial++ {
		tree := randomNode(rng, 3)
		src := tree.String()
		parsed, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: rendered filter %q does not reparse: %v", trial, src, err)
		}
		for probe := 0; probe < 50; probe++ {
			r := randomRecord(rng)
			if tree.Eval(&r) != parsed.Match(&r) {
				t.Fatalf("trial %d: semantics diverge after round trip\nfilter: %q\nrecord: %+v",
					trial, src, r)
			}
		}
	}
}

// TestRandomASTDoubleRoundTrip: rendering the reparsed AST again must be
// a fixed point (the printer is canonical).
func TestRandomASTDoubleRoundTrip(t *testing.T) {
	rng := stats.NewRNG(21)
	for trial := 0; trial < 200; trial++ {
		tree := randomNode(rng, 3)
		first, err := Parse(tree.String())
		if err != nil {
			t.Fatal(err)
		}
		second, err := Parse(first.String())
		if err != nil {
			t.Fatalf("trial %d: second parse failed: %v", trial, err)
		}
		if first.String() != second.String() {
			t.Fatalf("trial %d: printer not canonical:\n%q\n%q",
				trial, first.String(), second.String())
		}
	}
}
