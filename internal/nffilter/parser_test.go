package nffilter

import (
	"strings"
	"testing"

	"repro/internal/flow"
)

// rec builds a test record with handy defaults.
func rec(mod func(*flow.Record)) *flow.Record {
	r := &flow.Record{
		Start:   1_260_000_000,
		Dur:     2000,
		SrcIP:   flow.MustParseIP("10.191.64.165"),
		DstIP:   flow.MustParseIP("10.13.137.129"),
		SrcPort: 55548,
		DstPort: 80,
		Proto:   flow.ProtoTCP,
		Flags:   flow.TCPSyn | flow.TCPAck,
		Router:  3,
		Packets: 10,
		Bytes:   4000,
	}
	if mod != nil {
		mod(r)
	}
	return r
}

func TestParseAndMatch(t *testing.T) {
	cases := []struct {
		filter string
		want   bool
	}{
		{"any", true},
		{"src ip 10.191.64.165", true},
		{"src ip 10.191.64.166", false},
		{"dst ip 10.13.137.129", true},
		{"ip 10.13.137.129", true}, // either side
		{"ip 10.191.64.165", true}, // either side
		{"ip 1.2.3.4", false},
		{"src net 10.191.0.0/16", true},
		{"src net 10.13.0.0/16", false},
		{"net 10.13.0.0/16", true},
		{"dst port 80", true},
		{"dst port 81", false},
		{"port 80", true},
		{"port 55548", true},
		{"src port 80", false},
		{"dst port < 1024", true},
		{"src port < 1024", false},
		{"port >= 55548", true},
		{"dst port != 80", false},
		{"proto tcp", true},
		{"proto udp", false},
		{"proto 6", true},
		{"packets > 5", true},
		{"packets > 10", false},
		{"packets >= 10", true},
		{"bytes = 4000", true},
		{"bytes == 4000", true},
		{"duration < 3000", true},
		{"router 3", true},
		{"router != 3", false},
		{"flags S", true},
		{"flags SA", true},
		{"flags F", false},
		{"not flags F", true},
		{"src ip 10.191.64.165 and dst port 80", true},
		{"src ip 10.191.64.165 and dst port 81", false},
		{"dst port 81 or dst port 80", true},
		{"dst port 81 or dst port 82", false},
		{"(dst port 81 or dst port 80) and proto tcp", true},
		{"(dst port 81 or dst port 80) and proto udp", false},
		{"not (proto udp or proto icmp)", true},
		{"src ip 10.191.64.165 and dst ip 10.13.137.129 and src port 55548 and proto tcp", true},
	}
	r := rec(nil)
	for _, c := range cases {
		f, err := Parse(c.filter)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.filter, err)
			continue
		}
		if got := f.Match(r); got != c.want {
			t.Errorf("Match(%q) = %v, want %v", c.filter, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"bogus",
		"src",
		"src ip",
		"ip 1.2.3",
		"ip 1.2.3.4.5",
		"net 10.0.0.0/33",
		"port 65536",
		"port abc",
		"proto frob",
		"src proto tcp",
		"src packets > 5",
		"dst any",
		"flags XYZ",
		"src ip 1.2.3.4 and",
		"(src ip 1.2.3.4",
		"src ip 1.2.3.4)",
		"packets ! 5",
		"port = = 80",
		"ip 1.2.3.4 extra",
		"@",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", s)
		} else if _, ok := err.(*SyntaxError); !ok {
			t.Errorf("Parse(%q) error is %T, want *SyntaxError", s, err)
		}
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("src ip banana")
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Offset != 7 {
		t.Errorf("Offset = %d, want 7", se.Offset)
	}
	if !strings.Contains(se.Error(), "src ip banana") {
		t.Errorf("message %q should quote the input", se.Error())
	}
}

func TestStringRoundTrip(t *testing.T) {
	// Rendering then reparsing must preserve semantics. We check against a
	// panel of records rather than string equality, which would be brittle.
	filters := []string{
		"any",
		"src ip 10.191.64.165 and dst port 80",
		"(proto udp and packets > 1000000) or dst net 10.13.0.0/16",
		"not (src port < 1024 or flags S)",
		"dst port 81 or dst port 80 and proto tcp",
		"not any",
		"router 3 and bytes >= 4000 and duration < 3000",
		"port != 443",
	}
	records := []*flow.Record{
		rec(nil),
		rec(func(r *flow.Record) { r.Proto = flow.ProtoUDP; r.Packets = 2_000_000 }),
		rec(func(r *flow.Record) { r.SrcPort = 80; r.DstPort = 55548 }),
		rec(func(r *flow.Record) { r.Flags = 0; r.Router = 9 }),
		rec(func(r *flow.Record) { r.DstIP = flow.MustParseIP("192.0.2.1") }),
	}
	for _, src := range filters {
		f1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		f2, err := Parse(f1.String())
		if err != nil {
			t.Fatalf("reparse of %q (rendered %q): %v", src, f1.String(), err)
		}
		for i, r := range records {
			if f1.Match(r) != f2.Match(r) {
				t.Errorf("filter %q: record %d disagrees after round trip (rendered %q)",
					src, i, f1.String())
			}
		}
	}
}

func TestPrecedence(t *testing.T) {
	// "a or b and c" must parse as "a or (b and c)".
	f := MustParse("dst port 9999 or dst port 80 and proto tcp")
	if !f.Match(rec(nil)) {
		t.Fatal("expected match: (dst port 80 and proto tcp) holds")
	}
	udp := rec(func(r *flow.Record) { r.Proto = flow.ProtoUDP })
	if f.Match(udp) {
		t.Fatal("udp record matches neither disjunct")
	}
}

func TestFromNode(t *testing.T) {
	n := &And{Kids: []Node{
		&IPMatch{Dir: DirSrc, Addr: flow.MustParseIP("10.191.64.165")},
		&PortMatch{Dir: DirDst, Op: CmpEq, Port: 80},
	}}
	f := FromNode(n)
	if !f.Match(rec(nil)) {
		t.Fatal("programmatic filter must match")
	}
	if _, err := Parse(f.String()); err != nil {
		t.Fatalf("rendered programmatic filter must reparse: %v", err)
	}
	if !FromNode(nil).Match(rec(nil)) {
		t.Fatal("FromNode(nil) must match anything")
	}
}

func TestEmptyConjunctsRender(t *testing.T) {
	if got := (&And{}).String(); got != "any" {
		t.Errorf("empty And renders %q", got)
	}
	if got := (&Or{}).String(); got != "not any" {
		t.Errorf("empty Or renders %q", got)
	}
	if (&Or{}).Eval(rec(nil)) {
		t.Error("empty Or must match nothing")
	}
	if !(&And{}).Eval(rec(nil)) {
		t.Error("empty And must match everything")
	}
}

func TestFlagsFormat(t *testing.T) {
	m := &FlagsMatch{Mask: flow.TCPSyn | flow.TCPAck}
	if m.String() != "flags AS" {
		t.Errorf("FlagsMatch renders %q", m.String())
	}
	if (&FlagsMatch{Mask: 0}).String() != "flags 0" {
		t.Errorf("zero mask renders %q", (&FlagsMatch{Mask: 0}).String())
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse must panic on bad input")
		}
	}()
	MustParse("this is not a filter")
}
