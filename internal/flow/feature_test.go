package flow

import "testing"

func TestFeatureValue(t *testing.T) {
	r := sampleRecord()
	cases := []struct {
		f    Feature
		want uint32
	}{
		{FeatSrcIP, uint32(r.SrcIP)},
		{FeatDstIP, uint32(r.DstIP)},
		{FeatSrcPort, uint32(r.SrcPort)},
		{FeatDstPort, uint32(r.DstPort)},
		{FeatProto, uint32(r.Proto)},
	}
	for _, c := range cases {
		if got := c.f.Value(&r); got != c.want {
			t.Errorf("%v.Value = %d, want %d", c.f, got, c.want)
		}
	}
}

func TestFeatureStringParseRoundTrip(t *testing.T) {
	for _, f := range Features() {
		back, err := ParseFeature(f.String())
		if err != nil || back != f {
			t.Errorf("round trip of %v failed: %v, %v", f, back, err)
		}
	}
	if _, err := ParseFeature("nonsense"); err == nil {
		t.Error("ParseFeature accepted nonsense")
	}
}

func TestFeatureSets(t *testing.T) {
	if len(Features()) != NumFeatures {
		t.Fatalf("Features() has %d entries, want %d", len(Features()), NumFeatures)
	}
	if len(EntropyFeatures()) != 4 {
		t.Fatalf("EntropyFeatures() has %d entries, want 4", len(EntropyFeatures()))
	}
	seen := map[Feature]bool{}
	for _, f := range Features() {
		if seen[f] {
			t.Fatalf("duplicate feature %v", f)
		}
		seen[f] = true
	}
}

func TestFormatValue(t *testing.T) {
	if got := FeatSrcIP.FormatValue(uint32(MustParseIP("192.0.2.1"))); got != "192.0.2.1" {
		t.Errorf("srcIP format = %q", got)
	}
	if got := FeatDstPort.FormatValue(80); got != "80" {
		t.Errorf("dstPort format = %q", got)
	}
	if got := FeatProto.FormatValue(uint32(ProtoUDP)); got != "udp" {
		t.Errorf("proto format = %q", got)
	}
}
