package flow

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// recordWire is the JSON shape of a Record — one line of the NDJSON
// stream accepted by rcad's POST /api/v1/stream/ingest and emitted by
// flowgen -live. Addresses are dotted quads and the protocol is its
// name, so the stream stays greppable; zero-valued optional fields are
// omitted to keep high-volume streams compact.
type recordWire struct {
	Start   uint32 `json:"start"`
	Dur     uint32 `json:"dur,omitempty"`
	SrcIP   string `json:"src"`
	DstIP   string `json:"dst"`
	SrcPort uint16 `json:"sport,omitempty"`
	DstPort uint16 `json:"dport,omitempty"`
	Proto   string `json:"proto"`
	Flags   uint8  `json:"flags,omitempty"`
	Router  uint16 `json:"router,omitempty"`
	Anno    uint8  `json:"anno,omitempty"`
	Packets uint64 `json:"packets"`
	Bytes   uint64 `json:"bytes"`
}

// MarshalJSON renders the record in its wire form.
func (r Record) MarshalJSON() ([]byte, error) {
	proto := r.Proto.String()
	switch r.Proto {
	case ProtoICMP, ProtoTCP, ProtoUDP:
	default:
		// String() renders exotic protocols as "proto-N", which
		// ParseProtocol does not accept; the wire uses the bare number.
		proto = strconv.Itoa(int(uint8(r.Proto)))
	}
	return json.Marshal(recordWire{
		Start:   r.Start,
		Dur:     r.Dur,
		SrcIP:   r.SrcIP.String(),
		DstIP:   r.DstIP.String(),
		SrcPort: r.SrcPort,
		DstPort: r.DstPort,
		Proto:   proto,
		Flags:   r.Flags,
		Router:  r.Router,
		Anno:    uint8(r.Anno),
		Packets: r.Packets,
		Bytes:   r.Bytes,
	})
}

// UnmarshalJSON parses the wire form back into a record.
func (r *Record) UnmarshalJSON(data []byte) error {
	var w recordWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	src, err := ParseIP(w.SrcIP)
	if err != nil {
		return fmt.Errorf("src: %w", err)
	}
	dst, err := ParseIP(w.DstIP)
	if err != nil {
		return fmt.Errorf("dst: %w", err)
	}
	proto, err := ParseProtocol(w.Proto)
	if err != nil {
		return err
	}
	*r = Record{
		Start:   w.Start,
		Dur:     w.Dur,
		SrcIP:   src,
		DstIP:   dst,
		SrcPort: w.SrcPort,
		DstPort: w.DstPort,
		Proto:   proto,
		Flags:   w.Flags,
		Router:  w.Router,
		Anno:    Annotation(w.Anno),
		Packets: w.Packets,
		Bytes:   w.Bytes,
	}
	return nil
}
