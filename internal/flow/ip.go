package flow

import (
	"fmt"
	"strconv"
	"strings"
)

// IP is an IPv4 address in host byte order. The reproduction targets the
// NetFlow v5 records used in the paper's deployments, which are IPv4-only;
// a compact integer representation keeps records fixed-size and makes items
// for frequent itemset mining trivially packable (see internal/itemset).
type IP uint32

// IPFromOctets assembles an IP from its four dotted-quad octets.
func IPFromOctets(a, b, c, d byte) IP {
	return IP(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseIP parses a dotted-quad IPv4 address such as "192.0.2.7".
func ParseIP(s string) (IP, error) {
	var parts [4]uint64
	rest := s
	for i := 0; i < 4; i++ {
		var tok string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("flow: invalid IPv4 address %q", s)
			}
			tok, rest = rest[:dot], rest[dot+1:]
		} else {
			tok = rest
		}
		v, err := strconv.ParseUint(tok, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("flow: invalid IPv4 address %q", s)
		}
		parts[i] = v
	}
	return IPFromOctets(byte(parts[0]), byte(parts[1]), byte(parts[2]), byte(parts[3])), nil
}

// MustParseIP is ParseIP that panics on malformed input. It is intended for
// constants in tests and examples.
func MustParseIP(s string) IP {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// Octets returns the four dotted-quad octets of the address.
func (ip IP) Octets() (a, b, c, d byte) {
	return byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)
}

// String renders the address in dotted-quad form.
func (ip IP) String() string {
	a, b, c, d := ip.Octets()
	// strconv.AppendUint into a stack buffer avoids fmt overhead on hot paths
	// (record printing dominates large report generation).
	buf := make([]byte, 0, 15)
	buf = strconv.AppendUint(buf, uint64(a), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(b), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(c), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(d), 10)
	return string(buf)
}

// Prefix is an IPv4 CIDR prefix used by the filter language ("net 10.0.0.0/8")
// and by anomaly injectors that draw sources from a subnet.
type Prefix struct {
	Addr IP
	Bits int // prefix length, 0..32
}

// ParsePrefix parses CIDR notation such as "10.1.0.0/16". A bare address is
// accepted as a /32.
func ParsePrefix(s string) (Prefix, error) {
	addr := s
	bits := 32
	if i := strings.IndexByte(s, '/'); i >= 0 {
		addr = s[:i]
		v, err := strconv.Atoi(s[i+1:])
		if err != nil || v < 0 || v > 32 {
			return Prefix{}, fmt.Errorf("flow: invalid prefix length in %q", s)
		}
		bits = v
	}
	ip, err := ParseIP(addr)
	if err != nil {
		return Prefix{}, err
	}
	p := Prefix{Addr: ip, Bits: bits}
	return p.Masked(), nil
}

// MustParsePrefix is ParsePrefix that panics on malformed input.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// mask returns the network mask of the prefix as a host-order word.
func (p Prefix) mask() uint32 {
	if p.Bits <= 0 {
		return 0
	}
	return ^uint32(0) << (32 - uint(p.Bits))
}

// Masked returns the prefix with host bits zeroed.
func (p Prefix) Masked() Prefix {
	return Prefix{Addr: IP(uint32(p.Addr) & p.mask()), Bits: p.Bits}
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip IP) bool {
	return uint32(ip)&p.mask() == uint32(p.Addr)&p.mask()
}

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return p.Addr.String() + "/" + strconv.Itoa(p.Bits)
}
