package flow

import "fmt"

// Feature identifies one of the traffic features over which both the
// detectors and the itemset miner operate. The paper mines itemsets over the
// flow 5-tuple; the entropy detectors additionally track the four
// address/port features per Lakhina et al.
type Feature uint8

// The mined traffic features, in the column order of the paper's Table 1.
const (
	FeatSrcIP Feature = iota
	FeatDstIP
	FeatSrcPort
	FeatDstPort
	FeatProto

	// NumFeatures is the number of mined features; itemsets therefore have
	// at most NumFeatures items (one value per feature).
	NumFeatures = 5
)

// Features lists all mined features in canonical order.
func Features() []Feature {
	return []Feature{FeatSrcIP, FeatDstIP, FeatSrcPort, FeatDstPort, FeatProto}
}

// EntropyFeatures lists the four features whose empirical distributions the
// entropy-based detectors track (Lakhina'05 uses exactly these).
func EntropyFeatures() []Feature {
	return []Feature{FeatSrcIP, FeatDstIP, FeatSrcPort, FeatDstPort}
}

// String returns the column-header name used throughout reports ("srcIP",
// "dstPort", ...), matching the paper's Table 1 headings.
func (f Feature) String() string {
	switch f {
	case FeatSrcIP:
		return "srcIP"
	case FeatDstIP:
		return "dstIP"
	case FeatSrcPort:
		return "srcPort"
	case FeatDstPort:
		return "dstPort"
	case FeatProto:
		return "proto"
	default:
		return fmt.Sprintf("feature-%d", uint8(f))
	}
}

// ParseFeature parses a feature name as produced by Feature.String.
func ParseFeature(s string) (Feature, error) {
	switch s {
	case "srcIP", "srcip":
		return FeatSrcIP, nil
	case "dstIP", "dstip":
		return FeatDstIP, nil
	case "srcPort", "srcport":
		return FeatSrcPort, nil
	case "dstPort", "dstport":
		return FeatDstPort, nil
	case "proto":
		return FeatProto, nil
	}
	return 0, fmt.Errorf("flow: unknown feature %q", s)
}

// Value extracts the feature's value from a record, widened to uint32 so a
// single accessor covers addresses, ports and the protocol.
func (f Feature) Value(r *Record) uint32 {
	switch f {
	case FeatSrcIP:
		return uint32(r.SrcIP)
	case FeatDstIP:
		return uint32(r.DstIP)
	case FeatSrcPort:
		return uint32(r.SrcPort)
	case FeatDstPort:
		return uint32(r.DstPort)
	case FeatProto:
		return uint32(r.Proto)
	default:
		return 0
	}
}

// FormatValue renders a feature value the way an operator reads it:
// addresses dotted-quad, ports and protocols numeric/mnemonic.
func (f Feature) FormatValue(v uint32) string {
	switch f {
	case FeatSrcIP, FeatDstIP:
		return IP(v).String()
	case FeatProto:
		return Protocol(v).String()
	default:
		return fmt.Sprintf("%d", v)
	}
}
