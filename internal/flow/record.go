package flow

import (
	"errors"
	"fmt"
	"time"
)

// Protocol is an IP protocol number (the NetFlow "prot" field).
type Protocol uint8

// Protocol numbers for the transports that appear in the paper's anomaly
// catalogue (scans and SYN floods are TCP, point-to-point floods UDP, and
// some reflector traffic ICMP).
const (
	ProtoICMP Protocol = 1
	ProtoTCP  Protocol = 6
	ProtoUDP  Protocol = 17
)

// String returns the conventional protocol mnemonic, falling back to the
// decimal number for protocols outside the catalogue.
func (p Protocol) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto-%d", uint8(p))
	}
}

// ParseProtocol parses a protocol mnemonic ("tcp", "udp", "icmp") or a
// decimal protocol number.
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "icmp", "ICMP":
		return ProtoICMP, nil
	case "tcp", "TCP":
		return ProtoTCP, nil
	case "udp", "UDP":
		return ProtoUDP, nil
	}
	var n int
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n < 0 || n > 255 {
		return 0, fmt.Errorf("flow: unknown protocol %q", s)
	}
	return Protocol(n), nil
}

// TCP flag bits as exported in NetFlow records. Only the bits the anomaly
// injectors and the SYN-flood drill-down use are named.
const (
	TCPFin uint8 = 1 << 0
	TCPSyn uint8 = 1 << 1
	TCPRst uint8 = 1 << 2
	TCPPsh uint8 = 1 << 3
	TCPAck uint8 = 1 << 4
	TCPUrg uint8 = 1 << 5
)

// FiveTuple identifies a flow: the classic NetFlow aggregation key.
type FiveTuple struct {
	SrcIP   IP
	DstIP   IP
	SrcPort uint16
	DstPort uint16
	Proto   Protocol
}

// Reverse returns the tuple with source and destination swapped, in the
// manner of gopacket's Flow.Reverse.
func (t FiveTuple) Reverse() FiveTuple {
	return FiveTuple{
		SrcIP: t.DstIP, DstIP: t.SrcIP,
		SrcPort: t.DstPort, DstPort: t.SrcPort,
		Proto: t.Proto,
	}
}

// FastHash returns a 64-bit hash of the tuple suitable for map sharding and
// sketches. It is not symmetric: use Reverse explicitly when direction
// should not matter.
func (t FiveTuple) FastHash() uint64 {
	// SplitMix64-style finalizer over the packed tuple.
	x := uint64(t.SrcIP)<<32 | uint64(t.DstIP)
	x ^= uint64(t.SrcPort)<<48 | uint64(t.DstPort)<<32 | uint64(t.Proto)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// String renders the tuple in the familiar "src:port -> dst:port/proto" form.
func (t FiveTuple) String() string {
	return fmt.Sprintf("%s:%d -> %s:%d/%s", t.SrcIP, t.SrcPort, t.DstIP, t.DstPort, t.Proto)
}

// Annotation is the synthetic ground-truth label carried by generated
// records. Real NetFlow has no such field; the evaluation harness needs it
// to score extraction precision/recall. Zero means background traffic, any
// other value identifies the injected anomaly the record belongs to.
type Annotation uint16

// AnnoBackground marks a record as background (non-anomalous) traffic.
const AnnoBackground Annotation = 0

// Record is one stored flow record. The layout mirrors the fields of a
// NetFlow v5 record that the paper's pipeline consumes, plus the ingress
// point-of-presence (GEANT exports from 18 PoPs) and the synthetic
// ground-truth annotation.
type Record struct {
	Start   uint32 // flow start, Unix seconds
	Dur     uint32 // flow duration, milliseconds
	SrcIP   IP
	DstIP   IP
	SrcPort uint16
	DstPort uint16
	Proto   Protocol
	Flags   uint8  // cumulative TCP flags (0 for non-TCP)
	Router  uint16 // ingress PoP index
	Anno    Annotation
	Packets uint64
	Bytes   uint64
}

// Tuple returns the record's 5-tuple key.
func (r *Record) Tuple() FiveTuple {
	return FiveTuple{SrcIP: r.SrcIP, DstIP: r.DstIP, SrcPort: r.SrcPort, DstPort: r.DstPort, Proto: r.Proto}
}

// StartTime returns the flow start as a time.Time in UTC.
func (r *Record) StartTime() time.Time {
	return time.Unix(int64(r.Start), 0).UTC()
}

// IsAnomalous reports whether the record carries a non-background
// ground-truth annotation.
func (r *Record) IsAnomalous() bool { return r.Anno != AnnoBackground }

// Validation errors returned by Record.Validate.
var (
	ErrZeroPackets       = errors.New("flow: record has zero packets")
	ErrBytesBelowPackets = errors.New("flow: record has fewer bytes than packets")
)

// Validate checks the invariants the store relies on: every flow carries at
// least one packet, and at least one byte per packet (the minimum IP header
// alone is 20 bytes, but sampled-and-renormalized records may round down,
// so only the weak bound is enforced).
func (r *Record) Validate() error {
	if r.Packets == 0 {
		return ErrZeroPackets
	}
	if r.Bytes < r.Packets {
		return ErrBytesBelowPackets
	}
	return nil
}

// String renders the record in an nfdump-like single-line form.
func (r *Record) String() string {
	return fmt.Sprintf("%s %s pkts=%d bytes=%d pop=%d",
		r.StartTime().Format("2006-01-02 15:04:05"), r.Tuple(), r.Packets, r.Bytes, r.Router)
}

// Interval is a half-open time window [Start, End) in Unix seconds. Alarms
// and store queries are expressed in intervals aligned to the measurement
// bin (300 s in the GEANT deployment).
type Interval struct {
	Start uint32
	End   uint32
}

// NewInterval builds an interval from two instants.
func NewInterval(start, end time.Time) Interval {
	return Interval{Start: uint32(start.Unix()), End: uint32(end.Unix())}
}

// Contains reports whether the instant t (Unix seconds) falls inside the
// interval.
func (iv Interval) Contains(t uint32) bool { return t >= iv.Start && t < iv.End }

// Overlaps reports whether two intervals share any instant.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Start < other.End && other.Start < iv.End
}

// Duration returns the interval length.
func (iv Interval) Duration() time.Duration {
	if iv.End <= iv.Start {
		return 0
	}
	return time.Duration(iv.End-iv.Start) * time.Second
}

// String renders the interval as "[start, end)" in RFC 3339 form.
func (iv Interval) String() string {
	return fmt.Sprintf("[%s, %s)",
		time.Unix(int64(iv.Start), 0).UTC().Format(time.RFC3339),
		time.Unix(int64(iv.End), 0).UTC().Format(time.RFC3339))
}
