package flow

import (
	"testing"
	"testing/quick"
)

func TestParseIP(t *testing.T) {
	cases := []struct {
		in   string
		want IP
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"192.0.2.7", IPFromOctets(192, 0, 2, 7), true},
		{"10.1.2.3", IPFromOctets(10, 1, 2, 3), true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.0.0.1", 0, false},
		{"a.b.c.d", 0, false},
		{"", 0, false},
		{"1..2.3", 0, false},
		{"-1.0.0.0", 0, false},
	}
	for _, c := range cases {
		got, err := ParseIP(c.in)
		if c.ok && err != nil {
			t.Errorf("ParseIP(%q): unexpected error %v", c.in, err)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseIP(%q): expected error, got %v", c.in, got)
		}
		if c.ok && got != c.want {
			t.Errorf("ParseIP(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIPStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		ip := IP(v)
		back, err := ParseIP(ip.String())
		return err == nil && back == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIPOctets(t *testing.T) {
	ip := MustParseIP("1.2.3.4")
	a, b, c, d := ip.Octets()
	if a != 1 || b != 2 || c != 3 || d != 4 {
		t.Fatalf("Octets() = %d.%d.%d.%d, want 1.2.3.4", a, b, c, d)
	}
}

func TestMustParseIPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseIP on bad input did not panic")
		}
	}()
	MustParseIP("not-an-ip")
}

func TestParsePrefix(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"10.0.0.0/8", "10.0.0.0/8", true},
		{"10.1.2.3/8", "10.0.0.0/8", true}, // host bits masked
		{"192.0.2.7", "192.0.2.7/32", true},
		{"0.0.0.0/0", "0.0.0.0/0", true},
		{"10.0.0.0/33", "", false},
		{"10.0.0.0/-1", "", false},
		{"10.0.0/8", "", false},
	}
	for _, c := range cases {
		got, err := ParsePrefix(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParsePrefix(%q): ok=%v, err=%v", c.in, c.ok, err)
			continue
		}
		if c.ok && got.String() != c.want {
			t.Errorf("ParsePrefix(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("10.1.0.0/16")
	if !p.Contains(MustParseIP("10.1.255.1")) {
		t.Error("10.1.0.0/16 should contain 10.1.255.1")
	}
	if p.Contains(MustParseIP("10.2.0.1")) {
		t.Error("10.1.0.0/16 should not contain 10.2.0.1")
	}
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(MustParseIP("203.0.113.9")) {
		t.Error("/0 should contain everything")
	}
	host := MustParsePrefix("192.0.2.1/32")
	if !host.Contains(MustParseIP("192.0.2.1")) || host.Contains(MustParseIP("192.0.2.2")) {
		t.Error("/32 should contain exactly its own address")
	}
}

func TestPrefixContainsProperty(t *testing.T) {
	// Every address is contained in its own /32 and in /0.
	f := func(v uint32) bool {
		ip := IP(v)
		return Prefix{Addr: ip, Bits: 32}.Contains(ip) &&
			Prefix{Addr: 0, Bits: 0}.Contains(ip)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixMaskedIdempotent(t *testing.T) {
	f := func(v uint32, bits uint8) bool {
		p := Prefix{Addr: IP(v), Bits: int(bits % 33)}
		m := p.Masked()
		return m == m.Masked() && m.Contains(IP(v)) == p.Contains(IP(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
