// Package flow defines the NetFlow-style flow record model shared by every
// other package in this repository: IPv4 addresses, the 5-tuple, traffic
// counters and the traffic features over which anomaly extraction mines.
//
// The model matches what the paper's NfDump backend stores for NetFlow v5
// records (the GEANT and SWITCH deployments both exported v5-era records):
// IPv4 endpoints, transport ports, protocol, packet/byte/flow counters and
// a start timestamp. Records additionally carry the ingress point-of-presence
// (GEANT has 18) and a ground-truth annotation used only by the synthetic
// evaluation harness.
package flow
