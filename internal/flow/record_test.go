package flow

import (
	"testing"
	"testing/quick"
	"time"
)

func sampleRecord() Record {
	return Record{
		Start:   1_260_000_000,
		Dur:     1500,
		SrcIP:   MustParseIP("10.191.64.165"),
		DstIP:   MustParseIP("10.13.137.129"),
		SrcPort: 55548,
		DstPort: 80,
		Proto:   ProtoTCP,
		Flags:   TCPSyn,
		Router:  3,
		Packets: 2,
		Bytes:   120,
	}
}

func TestTupleReverse(t *testing.T) {
	r := sampleRecord()
	tu := r.Tuple()
	rev := tu.Reverse()
	if rev.SrcIP != tu.DstIP || rev.DstIP != tu.SrcIP ||
		rev.SrcPort != tu.DstPort || rev.DstPort != tu.SrcPort || rev.Proto != tu.Proto {
		t.Fatalf("Reverse() = %v, want swap of %v", rev, tu)
	}
	if rev.Reverse() != tu {
		t.Fatal("Reverse is not an involution")
	}
}

func TestTupleReverseInvolution(t *testing.T) {
	f := func(s, d uint32, sp, dp uint16, pr uint8) bool {
		tu := FiveTuple{IP(s), IP(d), sp, dp, Protocol(pr)}
		return tu.Reverse().Reverse() == tu
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFastHashDistinguishes(t *testing.T) {
	r := sampleRecord()
	a := r.Tuple()
	b := a
	b.SrcPort++
	if a.FastHash() == b.FastHash() {
		t.Error("hash collision on adjacent ports (possible but indicates a weak mix)")
	}
	if a.FastHash() != a.FastHash() {
		t.Error("hash must be deterministic")
	}
}

func TestFastHashSpread(t *testing.T) {
	// Hashing sequential tuples must not collapse into few buckets.
	const n = 4096
	buckets := make(map[uint64]int)
	r := sampleRecord()
	tu := r.Tuple()
	for i := 0; i < n; i++ {
		tu.SrcPort = uint16(i)
		buckets[tu.FastHash()%64]++
	}
	for b, c := range buckets {
		if c > n/64*3 {
			t.Fatalf("bucket %d has %d of %d entries: poor hash spread", b, c, n)
		}
	}
}

func TestRecordValidate(t *testing.T) {
	r := sampleRecord()
	if err := r.Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	bad := r
	bad.Packets = 0
	if err := bad.Validate(); err != ErrZeroPackets {
		t.Fatalf("zero packets: got %v, want ErrZeroPackets", err)
	}
	bad = r
	bad.Bytes = r.Packets - 1
	if err := bad.Validate(); err != ErrBytesBelowPackets {
		t.Fatalf("bytes<packets: got %v, want ErrBytesBelowPackets", err)
	}
}

func TestRecordTimes(t *testing.T) {
	r := sampleRecord()
	if got := r.StartTime(); got.Unix() != int64(r.Start) {
		t.Fatalf("StartTime = %v", got)
	}
	if !r.StartTime().Equal(r.StartTime().UTC()) {
		t.Fatal("StartTime must be UTC")
	}
}

func TestAnnotation(t *testing.T) {
	r := sampleRecord()
	if r.IsAnomalous() {
		t.Fatal("background record reported anomalous")
	}
	r.Anno = 7
	if !r.IsAnomalous() {
		t.Fatal("annotated record not reported anomalous")
	}
}

func TestIntervalContainsOverlaps(t *testing.T) {
	iv := Interval{Start: 100, End: 200}
	if !iv.Contains(100) || iv.Contains(200) || !iv.Contains(199) || iv.Contains(99) {
		t.Fatal("Contains must treat the interval as half-open [start,end)")
	}
	cases := []struct {
		other Interval
		want  bool
	}{
		{Interval{0, 100}, false},
		{Interval{0, 101}, true},
		{Interval{199, 300}, true},
		{Interval{200, 300}, false},
		{Interval{120, 130}, true},
		{Interval{100, 200}, true},
	}
	for _, c := range cases {
		if got := iv.Overlaps(c.other); got != c.want {
			t.Errorf("Overlaps(%v) = %v, want %v", c.other, got, c.want)
		}
	}
}

func TestIntervalDuration(t *testing.T) {
	iv := Interval{Start: 100, End: 400}
	if iv.Duration() != 300*time.Second {
		t.Fatalf("Duration = %v, want 5m", iv.Duration())
	}
	if (Interval{Start: 400, End: 100}).Duration() != 0 {
		t.Fatal("inverted interval must have zero duration")
	}
}

func TestNewInterval(t *testing.T) {
	start := time.Unix(1_260_000_000, 0)
	iv := NewInterval(start, start.Add(5*time.Minute))
	if iv.Start != 1_260_000_000 || iv.End != 1_260_000_300 {
		t.Fatalf("NewInterval = %+v", iv)
	}
}

func TestProtocolString(t *testing.T) {
	if ProtoTCP.String() != "tcp" || ProtoUDP.String() != "udp" || ProtoICMP.String() != "icmp" {
		t.Fatal("mnemonics wrong")
	}
	if Protocol(47).String() != "proto-47" {
		t.Fatalf("fallback = %q", Protocol(47).String())
	}
}

func TestParseProtocol(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Protocol
		ok   bool
	}{
		{"tcp", ProtoTCP, true}, {"UDP", ProtoUDP, true}, {"icmp", ProtoICMP, true},
		{"47", Protocol(47), true}, {"256", 0, false}, {"bogus", 0, false},
	} {
		got, err := ParseProtocol(c.in)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Errorf("ParseProtocol(%q) = %v, %v", c.in, got, err)
		}
	}
}
