// Command extract runs the paper's extended-Apriori anomaly extraction
// for one stored alarm (or an ad-hoc interval) and prints the ranked
// itemsets in the shape of the paper's Table 1. This is the core screen
// of the paper's operator GUI, including its tunable parameters.
//
// Usage:
//
//	extract -store /tmp/flows -alarmdb /tmp/alarms.json -id 3
//	extract -store /tmp/flows -incident i1
//	extract -store /tmp/flows -from 1300000800 -to 1300001100 \
//	        -meta "srcIP=10.191.64.165,dstPort=80"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	rootcause "repro"
	"repro/internal/detector"
	"repro/internal/flow"
)

func main() {
	var (
		storeDir  = flag.String("store", "", "flow store directory (required)")
		dbPath    = flag.String("alarmdb", "", "alarm database JSON path")
		alarmID   = flag.String("id", "", "stored alarm ID to extract")
		incID     = flag.String("incident", "", "stored incident ID to extract (one merged run over its members)")
		from      = flag.Uint("from", 0, "ad-hoc alarm interval start (unix seconds)")
		to        = flag.Uint("to", 0, "ad-hoc alarm interval end (unix seconds)")
		meta      = flag.String("meta", "", "ad-hoc meta-data: comma-separated feature=value pairs")
		minerName = flag.String("miner", "", "frequent-itemset miner (see rootcause.MinerNames; default apriori)")
		ranking   = flag.String("ranking", "", "itemset ranking mode: support (default), lift or weighted")
		minSets   = flag.Int("min-itemsets", 0, "override: self-tuning target minimum itemsets")
		maxSets   = flag.Int("max-itemsets", 0, "override: maximum reported itemsets")
		frac      = flag.Float64("support-frac", 0, "override: initial support fraction (0,1]")
		floor     = flag.Uint64("floor", 0, "override: absolute support floor")
		noPre     = flag.Bool("no-prefilter", false, "disable the meta-data pre-filter")
		flowOnly  = flag.Bool("flow-only", false, "classic Apriori: flow support only (no packet pass)")
		showFlows = flag.Int("show-flows", 0, "print up to N raw flows of the top itemset")
		async     = flag.Bool("async", false, "run through the job manager with live progress on stderr")
		wait      = flag.Bool("wait", true, "with -async: wait for the job (false: submit, print status, exit)")
	)
	flag.Usage = func() {
		fmt.Fprint(flag.CommandLine.Output(), `usage: extract -store DIR (-id ALARM | -incident ID | -from UNIX -to UNIX [-meta ITEMS]) [flags]

Run the paper's extended-Apriori anomaly extraction for one stored alarm
(or an ad-hoc interval) and print the ranked itemsets in the shape of
the paper's Table 1.

-incident extracts a correlated incident (see detect -correlate and
docs/incidents.md) instead: its member alarms merge into ONE mining run
over the incident's full interval, and every member is marked analyzed.

Ad-hoc meta-data (-meta) is a comma-separated feature=value list over
srcIP, dstIP, srcPort, dstPort, proto.

-miner selects the frequent-itemset miner: apriori (default), fpgrowth
or fda, plus any externally registered name. apriori and fpgrowth
produce identical itemsets and differ only in speed; fda additionally
prunes statistically insignificant items and low-lift itemsets (a
subset of the canonical output — see docs/mining.md).

-ranking selects how the final list is scored: support (max flow/packet
share, the default), lift (observed share over the independence
expectation) or weighted (share x log2(1+lift), inverse-support
weighting that boosts specific conjunctions).

-async routes the extraction through the system's job manager (the
same path rcad's /api/v1/jobs serves) and prints sampled progress —
phase, tuning round, streamed flows — to stderr while mining runs;
-wait=false just submits, prints the job status and exits.

Examples:
  extract -store /tmp/flows -alarmdb /tmp/flows/alarms.json -id 1
  extract -store /tmp/flows -id 1 -miner fpgrowth
  extract -store /tmp/flows -id 1 -miner fda -ranking weighted
  extract -store /tmp/flows -id 1 -async
  extract -store /tmp/flows -incident i1
  extract -store /tmp/flows -from 1300000800 -to 1300001100 \
          -meta "srcIP=10.191.64.165,dstPort=80"

Flags:
`)
		flag.PrintDefaults()
	}
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "extract: -store is required")
		flag.Usage()
		os.Exit(2)
	}
	opts := rootcause.DefaultExtractionOptions()
	if *minerName != "" {
		opts.Miner = *minerName
	}
	if *ranking != "" {
		opts.Ranking = *ranking
	}
	if *minSets > 0 {
		opts.MinItemsets = *minSets
	}
	if *maxSets > 0 {
		opts.MaxItemsets = *maxSets
	}
	if *frac > 0 {
		opts.InitialSupportFraction = *frac
	}
	if *floor > 0 {
		opts.SupportFloor = *floor
	}
	if *noPre {
		opts.UsePrefilter = false
	}
	if *flowOnly {
		opts.PacketCoverageMin = 0
	}
	if err := run(*storeDir, *dbPath, *alarmID, *incID, uint32(*from), uint32(*to), *meta, opts, *showFlows, *async, *wait); err != nil {
		fmt.Fprintln(os.Stderr, "extract:", err)
		os.Exit(1)
	}
}

func run(storeDir, dbPath, alarmID, incidentID string, from, to uint32, metaExpr string,
	opts rootcause.ExtractionOptions, showFlows int, async, wait bool) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	sys, err := rootcause.Open(rootcause.Config{
		StoreDir: storeDir, AlarmDBPath: dbPath, Extraction: &opts,
	})
	if err != nil {
		return err
	}
	defer sys.Close()

	var res *rootcause.Result
	switch {
	case incidentID != "" && async:
		res, err = runJob(ctx, sys, rootcause.JobRequest{IncidentID: incidentID}, wait)
		if err != nil || res == nil {
			return err
		}
	case incidentID != "":
		res, err = sys.ExtractIncident(ctx, incidentID)
	case alarmID != "" && async:
		res, err = runJob(ctx, sys, rootcause.JobRequest{AlarmID: alarmID}, wait)
		if err != nil || res == nil {
			return err
		}
	case alarmID != "":
		res, err = sys.Extract(ctx, alarmID)
	case from != 0 && to != 0:
		metaItems, merr := parseMeta(metaExpr)
		if merr != nil {
			return merr
		}
		alarm := rootcause.Alarm{
			Detector: "cli",
			Interval: flow.Interval{Start: from, End: to},
			Meta:     metaItems,
		}
		if async {
			// An ad-hoc alarm is filed first — jobs run against stored
			// alarms so the result stays fetchable by ID.
			res, err = runJob(ctx, sys, rootcause.JobRequest{AlarmID: sys.FileAlarm(alarm)}, wait)
			if err != nil || res == nil {
				return err
			}
		} else {
			res, err = sys.ExtractAlarm(ctx, &alarm)
		}
	default:
		return fmt.Errorf("need -id, -incident, or -from and -to")
	}
	if err != nil {
		return err
	}

	fmt.Print(res.Table().String())
	fmt.Printf("\ncandidates: %d flows / %d packets (prefiltered=%v)\n",
		res.CandidateFlows, res.CandidatePackets, res.Prefiltered)
	for _, tr := range res.Tuning {
		fmt.Printf("tuning[%s]: min support %d -> %d in %d round(s), %d itemsets\n",
			tr.Dimension, tr.InitialMin, tr.FinalMin, tr.Rounds, tr.ItemsetsSeen)
	}
	if res.BaselineDropped > 0 {
		fmt.Printf("baseline filter dropped %d itemset(s)\n", res.BaselineDropped)
	}

	if showFlows > 0 && len(res.Itemsets) > 0 {
		flows, err := sys.ItemsetFlows(ctx, res.Alarm.Interval, &res.Itemsets[0])
		if err != nil {
			return err
		}
		fmt.Printf("\nraw flows of top itemset (%d total, showing %d):\n",
			len(flows), min(showFlows, len(flows)))
		for i := 0; i < len(flows) && i < showFlows; i++ {
			fmt.Println(" ", flows[i].String())
		}
	}
	return nil
}

// runJob submits one extraction (alarm or incident) to the in-process
// job manager and, when wait is set, follows its progress to
// completion. With wait=false it prints the submitted job's status and
// returns a nil result (the process exit cancels the job — submission
// without waiting is for demonstrating the API surface; a long-lived
// rcad serves it for real).
func runJob(ctx context.Context, sys *rootcause.System, req rootcause.JobRequest, wait bool) (*rootcause.Result, error) {
	jobID, err := sys.Submit(req,
		rootcause.WithProgress(func(p rootcause.ExtractionProgress) {
			fmt.Fprintf(os.Stderr, "progress: phase=%s", p.Phase)
			if p.TuningRound > 0 {
				fmt.Fprintf(os.Stderr, " round=%d", p.TuningRound)
			}
			if p.CandidateFlows > 0 {
				fmt.Fprintf(os.Stderr, " flows=%d", p.CandidateFlows)
			}
			if p.Itemsets > 0 {
				fmt.Fprintf(os.Stderr, " itemsets=%d", p.Itemsets)
			}
			fmt.Fprintln(os.Stderr)
		}))
	if err != nil {
		return nil, err
	}
	st, err := sys.Job(jobID)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "job %s: %s (kind %s)\n", st.ID, st.State, st.Kind)
	if !wait {
		return nil, nil
	}
	jr, err := sys.Wait(ctx, jobID)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "job %s: %s\n", jr.Status.ID, jr.Status.State)
	return jr.Result, nil
}

// parseMeta parses "srcIP=10.0.0.1,dstPort=80" into meta items.
func parseMeta(expr string) ([]detector.MetaItem, error) {
	if expr == "" {
		return nil, nil
	}
	var items []detector.MetaItem
	for _, part := range strings.Split(expr, ",") {
		part = strings.TrimSpace(part)
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return nil, fmt.Errorf("meta item %q is not feature=value", part)
		}
		feat, err := flow.ParseFeature(part[:eq])
		if err != nil {
			return nil, err
		}
		valStr := part[eq+1:]
		var value uint32
		switch feat {
		case flow.FeatSrcIP, flow.FeatDstIP:
			ip, err := flow.ParseIP(valStr)
			if err != nil {
				return nil, err
			}
			value = uint32(ip)
		case flow.FeatProto:
			p, err := flow.ParseProtocol(valStr)
			if err != nil {
				return nil, err
			}
			value = uint32(p)
		default:
			var port uint16
			if _, err := fmt.Sscanf(valStr, "%d", &port); err != nil {
				return nil, fmt.Errorf("bad port %q: %v", valStr, err)
			}
			value = uint32(port)
		}
		items = append(items, detector.MetaItem{Feature: feat, Value: value})
	}
	return items, nil
}
