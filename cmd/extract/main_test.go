package main

import (
	"testing"

	rootcause "repro"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/nfstore"
)

func TestParseMeta(t *testing.T) {
	items, err := parseMeta("srcIP=10.191.64.165,dstPort=80,proto=tcp")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("%d items", len(items))
	}
	if items[0].Feature != flow.FeatSrcIP || items[0].Value != uint32(flow.MustParseIP("10.191.64.165")) {
		t.Fatalf("item 0 = %v", items[0])
	}
	if items[1].Feature != flow.FeatDstPort || items[1].Value != 80 {
		t.Fatalf("item 1 = %v", items[1])
	}
	if items[2].Feature != flow.FeatProto || items[2].Value != uint32(flow.ProtoTCP) {
		t.Fatalf("item 2 = %v", items[2])
	}
}

func TestParseMetaWhitespaceAndEmpty(t *testing.T) {
	items, err := parseMeta(" dstPort=443 , srcPort=1000 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 || items[0].Value != 443 || items[1].Value != 1000 {
		t.Fatalf("items = %v", items)
	}
	empty, err := parseMeta("")
	if err != nil || empty != nil {
		t.Fatalf("empty meta = %v, %v", empty, err)
	}
}

func TestParseMetaErrors(t *testing.T) {
	bad := []string{
		"noequals",
		"bogusfeature=1",
		"srcIP=not-an-ip",
		"dstPort=abc",
		"proto=zzz",
	}
	for _, s := range bad {
		if _, err := parseMeta(s); err == nil {
			t.Errorf("parseMeta(%q) must fail", s)
		}
	}
}

// newExtractStore generates a store with a port scan for end-to-end runs.
func newExtractStore(t *testing.T) (string, uint32, uint32) {
	t.Helper()
	dir := t.TempDir()
	store, err := nfstore.Create(dir, nfstore.DefaultBinSeconds)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	scenario := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 200},
		Bins:       4, StartTime: 1_300_000_200, Seed: 19,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: flow.MustParseIP("10.9.9.9"),
				Victim: flow.MustParseIP("198.19.0.9"), SrcPort: 1234,
				Ports: 1000, FlowsPerPort: 1, Router: 0}, Bin: 2},
		},
	}
	truth, err := scenario.Generate(store)
	if err != nil {
		t.Fatal(err)
	}
	iv := truth.Entries[0].Interval
	return dir, iv.Start, iv.End
}

// TestRunIncident drives -incident: a filed alarm is correlated into
// an incident, then extracted by incident ID (sync and async).
func TestRunIncident(t *testing.T) {
	storeDir, from, to := newExtractStore(t)
	dbPath := storeDir + "/alarms.json"
	sys, err := rootcause.Open(rootcause.Config{StoreDir: storeDir, AlarmDBPath: dbPath})
	if err != nil {
		t.Fatal(err)
	}
	metaItems, err := parseMeta("srcIP=10.9.9.9")
	if err != nil {
		t.Fatal(err)
	}
	sys.FileAlarm(rootcause.Alarm{
		Detector: "cli",
		Interval: flow.Interval{Start: from, End: to},
		Meta:     metaItems,
	})
	sum, err := sys.Correlate(t.Context(), flow.Interval{Start: from, End: to})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.IncidentIDs) != 1 {
		t.Fatalf("incidents = %v", sum.IncidentIDs)
	}
	incID := sum.IncidentIDs[0]
	sys.Close()

	opts := rootcause.DefaultExtractionOptions()
	if err := run(storeDir, dbPath, "", incID, 0, 0, "", opts, 0, false, true); err != nil {
		t.Fatalf("sync incident run: %v", err)
	}
	if err := run(storeDir, dbPath, "", incID, 0, 0, "", opts, 0, true, true); err != nil {
		t.Fatalf("async incident run: %v", err)
	}
	if err := run(storeDir, dbPath, "", "i404", 0, 0, "", opts, 0, false, true); err == nil {
		t.Fatal("unknown incident must be reported")
	}
}

// TestRunEndToEndWithMiner drives the extract command's run path with
// each built-in miner, including -miner fpgrowth.
func TestRunEndToEndWithMiner(t *testing.T) {
	storeDir, from, to := newExtractStore(t)
	for _, name := range []string{"", "apriori", "fpgrowth"} {
		opts := rootcause.DefaultExtractionOptions()
		if name != "" {
			opts.Miner = name
		}
		if err := run(storeDir, "", "", "", from, to, "srcIP=10.9.9.9", opts, 2, false, true); err != nil {
			t.Fatalf("miner %q: %v", name, err)
		}
	}
}

// TestRunAsync drives the -async path end to end: the ad-hoc alarm is
// filed, submitted as a job, waited on, and the Table-1 output printed
// exactly like the synchronous path.
func TestRunAsync(t *testing.T) {
	storeDir, from, to := newExtractStore(t)
	opts := rootcause.DefaultExtractionOptions()
	if err := run(storeDir, "", "", "", from, to, "srcIP=10.9.9.9", opts, 0, true, true); err != nil {
		t.Fatalf("async run: %v", err)
	}
}

// TestRunAsyncNoWait submits without waiting: no error, no result (the
// job is canceled by system close on exit).
func TestRunAsyncNoWait(t *testing.T) {
	storeDir, from, to := newExtractStore(t)
	opts := rootcause.DefaultExtractionOptions()
	if err := run(storeDir, "", "", "", from, to, "", opts, 0, true, false); err != nil {
		t.Fatalf("async no-wait run: %v", err)
	}
}

// TestRunUnknownMinerRejected: a bogus -miner fails fast at system
// assembly.
func TestRunUnknownMinerRejected(t *testing.T) {
	storeDir, from, to := newExtractStore(t)
	opts := rootcause.DefaultExtractionOptions()
	opts.Miner = "frobnicator"
	if err := run(storeDir, "", "", "", from, to, "", opts, 0, false, true); err == nil {
		t.Fatal("unknown miner must be rejected")
	}
}
