package main

import (
	"testing"

	"repro/internal/flow"
)

func TestParseMeta(t *testing.T) {
	items, err := parseMeta("srcIP=10.191.64.165,dstPort=80,proto=tcp")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("%d items", len(items))
	}
	if items[0].Feature != flow.FeatSrcIP || items[0].Value != uint32(flow.MustParseIP("10.191.64.165")) {
		t.Fatalf("item 0 = %v", items[0])
	}
	if items[1].Feature != flow.FeatDstPort || items[1].Value != 80 {
		t.Fatalf("item 1 = %v", items[1])
	}
	if items[2].Feature != flow.FeatProto || items[2].Value != uint32(flow.ProtoTCP) {
		t.Fatalf("item 2 = %v", items[2])
	}
}

func TestParseMetaWhitespaceAndEmpty(t *testing.T) {
	items, err := parseMeta(" dstPort=443 , srcPort=1000 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 || items[0].Value != 443 || items[1].Value != 1000 {
		t.Fatalf("items = %v", items)
	}
	empty, err := parseMeta("")
	if err != nil || empty != nil {
		t.Fatalf("empty meta = %v, %v", empty, err)
	}
}

func TestParseMetaErrors(t *testing.T) {
	bad := []string{
		"noequals",
		"bogusfeature=1",
		"srcIP=not-an-ip",
		"dstPort=abc",
		"proto=zzz",
	}
	for _, s := range bad {
		if _, err := parseMeta(s); err == nil {
			t.Errorf("parseMeta(%q) must fail", s)
		}
	}
}
