package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	rootcause "repro"
	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/shardstore"
)

// rcadProc is one rcad process under test with its resolved base URL.
type rcadProc struct {
	cmd    *exec.Cmd
	base   string
	exited chan error
	done   bool
}

// bootRcad starts the rcad binary with the given flags plus an
// ephemeral listen address and waits for its "serving on" log line.
func bootRcad(t *testing.T, bin string, args ...string) *rcadProc {
	t.Helper()
	cmd := exec.Command(bin, append(args, "-listen", "127.0.0.1:0")...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &rcadProc{cmd: cmd, exited: make(chan error, 1)}
	t.Cleanup(func() {
		if !p.done {
			cmd.Process.Kill()
			<-p.exited
		}
	})

	addrRe := regexp.MustCompile(`serving on (\S+)`)
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	go func() { p.exited <- cmd.Wait() }()

	select {
	case addr := <-addrCh:
		p.base = "http://" + addr
	case err := <-p.exited:
		t.Fatalf("rcad exited before serving: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("rcad never reported its listen address")
	}
	return p
}

// term sends SIGTERM and waits for a clean exit.
func (p *rcadProc) term(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-p.exited:
		p.done = true
		if err != nil {
			t.Fatalf("rcad exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("rcad never exited after SIGTERM")
	}
}

// kill SIGKILLs the process, simulating a dead cluster node.
func (p *rcadProc) kill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-p.exited
	p.done = true
}

// TestIntegrationCluster boots a real 3-node rcad cluster — three peer
// nodes each serving one shard of a hash-partitioned store, plus a
// coordinator started with -peers — and verifies extraction through the
// coordinator matches the in-process sharded result, the health
// endpoint lists every peer, and a SIGKILLed peer turns into a loud
// shard-named error rather than a hang or silent truncation. This is
// the CI shard-smoke job's entry point (run under -race).
func TestIntegrationCluster(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	dir := t.TempDir()

	bin := filepath.Join(dir, "rcad-under-test")
	build := exec.Command(goBin, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build rcad: %v\n%s", err, out)
	}

	// Generate a 3-shard store with a port scan, file an alarm, and
	// compute the expected extraction in-process over the same shards.
	storeDir := filepath.Join(dir, "flows")
	dbPath := filepath.Join(dir, "alarms.json")
	sys, err := rootcause.Create(rootcause.Config{StoreDir: storeDir, AlarmDBPath: dbPath},
		rootcause.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	scanner := flow.MustParseIP("10.191.64.165")
	scenario := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 200},
		Bins:       4, StartTime: 1_300_000_200, Seed: 13,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scanner, Victim: flow.MustParseIP("198.19.137.129"),
				SrcPort: 55548, Ports: 1000, FlowsPerPort: 1, Router: 1}, Bin: 2},
		},
	}
	truth, err := scenario.Generate(sys.Store())
	if err != nil {
		t.Fatal(err)
	}
	alarmID := sys.FileAlarm(rootcause.Alarm{
		Detector: "test",
		Interval: truth.Entries[0].Interval,
		Kind:     detector.KindPortScan,
		Meta:     []detector.MetaItem{{Feature: flow.FeatSrcIP, Value: uint32(scanner)}},
	})
	expected, err := sys.Extract(context.Background(), alarmID)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	shardDirs, err := shardstore.ShardDirs(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(shardDirs) != 3 {
		t.Fatalf("shard dirs = %v, want 3", shardDirs)
	}

	// Each peer node serves one shard directory — a plain flow store.
	peers := make([]*rcadProc, 3)
	urls := make([]string, 3)
	for i, sd := range shardDirs {
		peers[i] = bootRcad(t, bin, "-store", sd)
		urls[i] = peers[i].base
	}
	coord := bootRcad(t, bin,
		"-peers", strings.Join(urls, ","),
		"-alarmdb", dbPath, "-drain", "5s")

	// Health on the coordinator aggregates the cluster: has_data from
	// the merged span, one shards row per peer URL.
	var health struct {
		Status  string `json:"status"`
		HasData bool   `json:"has_data"`
		Shards  []struct {
			Shard string `json:"shard"`
			Error string `json:"error"`
		} `json:"shards"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(coord.base + "/api/health")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&health)
			resp.Body.Close()
			if err == nil && resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator health never answered: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if health.Status != "ok" || !health.HasData {
		t.Fatalf("health = %+v", health)
	}
	if len(health.Shards) != 3 {
		t.Fatalf("health lists %d shards, want 3: %+v", len(health.Shards), health.Shards)
	}
	for i, sh := range health.Shards {
		if sh.Shard != urls[i] {
			t.Errorf("shard %d = %q, want peer %q", i, sh.Shard, urls[i])
		}
		if sh.Error != "" {
			t.Errorf("shard %d reports error %q with all peers up", i, sh.Error)
		}
	}

	// Extraction through the coordinator must match the in-process
	// sharded extraction exactly.
	extract := func() (int, extractResponse, string) {
		resp, err := http.Post(coord.base+"/api/alarms/"+alarmID+"/extract", "application/json", nil)
		if err != nil {
			t.Fatalf("extract: %v", err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		var out extractResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(raw, &out); err != nil {
				t.Fatalf("decode extract: %v\n%s", err, raw)
			}
		}
		return resp.StatusCode, out, string(bytes.TrimSpace(raw))
	}
	code, got, _ := extract()
	if code != http.StatusOK {
		t.Fatalf("extract status %d", code)
	}
	if got.CandidateFlows != expected.CandidateFlows || got.CandidatePackets != expected.CandidatePackets {
		t.Fatalf("cluster candidates (%d flows, %d packets) != in-process (%d, %d)",
			got.CandidateFlows, got.CandidatePackets, expected.CandidateFlows, expected.CandidatePackets)
	}
	if len(got.Itemsets) != len(expected.Itemsets) {
		t.Fatalf("cluster extracted %d itemsets, in-process %d", len(got.Itemsets), len(expected.Itemsets))
	}
	for i := range got.Itemsets {
		want := &expected.Itemsets[i]
		g := &got.Itemsets[i]
		if g.Items != want.Items.String() || g.FlowSupport != want.FlowSupport || g.PacketSupport != want.PacketSupport {
			t.Errorf("itemset %d: cluster %q (%d/%d) != in-process %q (%d/%d)",
				i, g.Items, g.FlowSupport, g.PacketSupport,
				want.Items.String(), want.FlowSupport, want.PacketSupport)
		}
	}

	// Kill one peer: extraction must fail fast with an error naming the
	// dead shard — never hang, never silently return partial flows.
	peers[2].kill(t)
	code, _, body := extract()
	if code == http.StatusOK {
		t.Fatalf("extract succeeded with a dead peer: %s", body)
	}
	if !strings.Contains(body, urls[2]) {
		t.Fatalf("dead-peer error does not name the shard %q: %s", urls[2], body)
	}

	// Health keeps answering — degraded, with the failure pinned to the
	// dead peer's row.
	resp, err := http.Get(coord.base + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	health.Shards = nil
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health with a dead peer answered %d, want 200", resp.StatusCode)
	}
	if health.Status != "degraded" {
		t.Errorf("health status with a dead peer = %q, want degraded", health.Status)
	}
	var deadRows int
	for _, sh := range health.Shards {
		if sh.Error != "" {
			deadRows++
			if sh.Shard != urls[2] {
				t.Errorf("error pinned to %q, want dead peer %q", sh.Shard, urls[2])
			}
		}
	}
	if deadRows != 1 {
		t.Errorf("health reports %d dead shards, want 1: %+v", deadRows, health.Shards)
	}

	// Clean shutdown: coordinator first, then the surviving peers.
	coord.term(t)
	peers[0].term(t)
	peers[1].term(t)
}
