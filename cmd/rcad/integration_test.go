package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	rootcause "repro"
	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/gen"
)

// TestIntegrationHTTP boots the real rcad binary against a generated
// store and drives the job API over the wire: submit → poll → result →
// cancel, plus the legacy synchronous wrapper, then a clean SIGTERM
// shutdown. This is the CI http-integration job's entry point (run
// under -race).
func TestIntegrationHTTP(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	dir := t.TempDir()

	// Build the server binary.
	bin := filepath.Join(dir, "rcad-under-test")
	build := exec.Command(goBin, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build rcad: %v\n%s", err, out)
	}

	// Generate a store with a port scan and file one alarm.
	storeDir := filepath.Join(dir, "flows")
	dbPath := filepath.Join(dir, "alarms.json")
	sys, err := rootcause.Create(rootcause.Config{StoreDir: storeDir, AlarmDBPath: dbPath})
	if err != nil {
		t.Fatal(err)
	}
	scanner := flow.MustParseIP("10.191.64.165")
	scenario := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 200},
		Bins:       4, StartTime: 1_300_000_200, Seed: 13,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scanner, Victim: flow.MustParseIP("198.19.137.129"),
				SrcPort: 55548, Ports: 1000, FlowsPerPort: 1, Router: 1}, Bin: 2},
		},
	}
	truth, err := scenario.Generate(sys.Store())
	if err != nil {
		t.Fatal(err)
	}
	alarmID := sys.FileAlarm(rootcause.Alarm{
		Detector: "test",
		Interval: truth.Entries[0].Interval,
		Kind:     detector.KindPortScan,
		Meta:     []detector.MetaItem{{Feature: flow.FeatSrcIP, Value: uint32(scanner)}},
	})
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Boot rcad on an ephemeral port and parse the resolved address from
	// its log line.
	cmd := exec.Command(bin,
		"-store", storeDir, "-alarmdb", dbPath,
		"-listen", "127.0.0.1:0", "-job-workers", "2", "-drain", "5s")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	stopped := false
	t.Cleanup(func() {
		if !stopped {
			cmd.Process.Kill()
			<-exited
		}
	})

	addrRe := regexp.MustCompile(`serving on (\S+)`)
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	go func() { exited <- cmd.Wait() }()

	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case err := <-exited:
		t.Fatalf("rcad exited before serving: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("rcad never reported its listen address")
	}

	get := func(path string, into any) int {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if into != nil {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatalf("decode %s: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	// Health.
	var health struct {
		Status  string `json:"status"`
		HasData bool   `json:"has_data"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code := get("/api/health", &health); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("health never answered 200")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if health.Status != "ok" || !health.HasData {
		t.Fatalf("health = %+v", health)
	}

	// Submit → poll → result.
	var submitted struct {
		Job struct {
			ID    string `json:"id"`
			State string `json:"state"`
		} `json:"job"`
	}
	resp, err := http.Post(base+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"alarm_id":"`+alarmID+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline = time.Now().Add(30 * time.Second)
	for {
		var poll struct {
			Job struct {
				State string `json:"state"`
			} `json:"job"`
		}
		if code := get("/api/v1/jobs/"+submitted.Job.ID, &poll); code != http.StatusOK {
			t.Fatalf("poll status %d", code)
		}
		if poll.Job.State == "done" {
			break
		}
		if poll.Job.State == "failed" || poll.Job.State == "canceled" {
			t.Fatalf("job ended %s", poll.Job.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}
	var result struct {
		Result struct {
			AlarmID  string `json:"alarm_id"`
			Itemsets []struct {
				Items string `json:"items"`
			} `json:"itemsets"`
		} `json:"result"`
	}
	if code := get("/api/v1/jobs/"+submitted.Job.ID+"/result", &result); code != http.StatusOK {
		t.Fatalf("result status %d", code)
	}
	if result.Result.AlarmID != alarmID || len(result.Result.Itemsets) == 0 {
		t.Fatalf("job result = %+v", result.Result)
	}

	// Legacy wrapper answers over the same path.
	resp, err = http.Post(base+"/api/alarms/"+alarmID+"/extract", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var legacy struct {
		Itemsets []struct {
			Items string `json:"items"`
		} `json:"itemsets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&legacy); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(legacy.Itemsets) == 0 {
		t.Fatalf("legacy extract: status %d, %d itemsets", resp.StatusCode, len(legacy.Itemsets))
	}
	if legacy.Itemsets[0].Items != result.Result.Itemsets[0].Items {
		t.Fatalf("legacy top itemset %q != job top itemset %q",
			legacy.Itemsets[0].Items, result.Result.Itemsets[0].Items)
	}

	// Submit a long batch and cancel it over the wire.
	ids := make([]string, 200)
	for i := range ids {
		ids[i] = alarmID
	}
	raw, _ := json.Marshal(map[string]any{"alarm_ids": ids, "concurrency": 1})
	resp, err = http.Post(base+"/api/v1/jobs", "application/json", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	var batch struct {
		Job struct {
			ID string `json:"id"`
		} `json:"job"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	req, _ := http.NewRequest(http.MethodDelete, base+"/api/v1/jobs/"+batch.Job.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", dresp.StatusCode)
	}
	deadline = time.Now().Add(30 * time.Second)
	for {
		var poll struct {
			Job struct {
				State string `json:"state"`
			} `json:"job"`
		}
		get("/api/v1/jobs/"+batch.Job.ID, &poll)
		if poll.Job.State == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch never canceled (state %s)", poll.Job.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Clean shutdown on SIGTERM.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-exited:
		stopped = true
		if err != nil {
			t.Fatalf("rcad exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("rcad never exited after SIGTERM")
	}
}
