package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	rootcause "repro"
	"repro/internal/gen"
	"repro/internal/stream"
)

// newLiveServer builds an empty live-mode system wrapped in an httptest
// server; records arrive only through the ingest endpoint.
func newLiveServer(t *testing.T, cfg rootcause.LiveConfig) (*httptest.Server, *server) {
	t.Helper()
	dir := t.TempDir()
	sys, err := rootcause.Create(rootcause.Config{
		StoreDir:    filepath.Join(dir, "flows"),
		AlarmDBPath: filepath.Join(dir, "alarms.json"),
	}, rootcause.WithLive(cfg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	hs := &server{sys: sys}
	srv := httptest.NewServer(hs.routes())
	t.Cleanup(srv.Close)
	return srv, hs
}

func TestStreamEndpointsRequireLive(t *testing.T) {
	srv, _, _ := newTestServerFull(t) // batch-mode system
	resp, err := http.Post(srv.URL+"/api/v1/stream/ingest", "application/x-ndjson",
		strings.NewReader(`{"start":1,"src":"10.0.0.1","dst":"10.0.0.2","proto":"tcp","packets":1,"bytes":40}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("ingest on batch system: status %d, want 409", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/api/v1/stream/incidents")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("tail on batch system: status %d, want 409", resp.StatusCode)
	}
}

func TestStreamIngestCountsAndRejects(t *testing.T) {
	srv, hs := newLiveServer(t, rootcause.LiveConfig{DisableAutoExtract: true})

	body := strings.Join([]string{
		`{"start":1300000200,"src":"10.0.0.1","dst":"198.18.0.1","dport":80,"proto":"tcp","packets":2,"bytes":120}`,
		``, // blank lines are skipped, not counted
		`{"start":1300000201,"src":"10.0.0.2","dst":"198.18.0.1","dport":80,"proto":"udp","packets":1,"bytes":60}`,
	}, "\n")
	resp, err := http.Post(srv.URL+"/api/v1/stream/ingest", "application/x-ndjson",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var accepted struct {
		Ingested uint64 `json:"ingested"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || accepted.Ingested != 2 {
		t.Fatalf("status %d ingested %d, want 200/2", resp.StatusCode, accepted.Ingested)
	}

	// A malformed line fails with its line number; the record before it
	// is already in (append-only, not transactional).
	bad := `{"start":1300000202,"src":"10.0.0.3","dst":"198.18.0.1","proto":"tcp","packets":1,"bytes":40}` +
		"\n" + `{"start":1300000203,"src":"not-an-ip","dst":"198.18.0.1","proto":"tcp","packets":1,"bytes":40}`
	resp, err = http.Post(srv.URL+"/api/v1/stream/ingest", "application/x-ndjson",
		strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	var rejected struct {
		Error    string `json:"error"`
		Ingested uint64 `json:"ingested"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rejected); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed line: status %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(rejected.Error, "line 2") || rejected.Ingested != 1 {
		t.Fatalf("rejection = %+v, want line 2 after 1 ingested", rejected)
	}

	// The census surfaces the stream section with everything accepted.
	var health struct {
		Stream *rootcause.StreamStats `json:"stream"`
	}
	getJSON(t, srv.URL+"/api/health", &health)
	if health.Stream == nil {
		t.Fatal("health has no stream section on a live system")
	}
	if health.Stream.Ingested != 3 {
		t.Fatalf("health stream ingested = %d, want 3", health.Stream.Ingested)
	}
	if hs.sseStreams.Load() != 0 {
		t.Fatalf("sse streams = %d, want 0", hs.sseStreams.Load())
	}
}

// TestStreamLiveEndToEndHTTP drives the full loop over the wire: a
// catalog scenario is replayed through POST /api/v1/stream/ingest and
// the SSE tail must announce an auto-extracted incident covering the
// ground-truth interval — no manual detect/correlate/extract calls.
func TestStreamLiveEndToEndHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("full live replay")
	}
	srv, hs := newLiveServer(t, rootcause.LiveConfig{})

	def, ok := gen.Lookup("ddos-syn")
	if !ok {
		t.Fatal("ddos-syn not in catalog")
	}
	col := stream.NewCollector(300)
	scenario := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 150, Hosts: 500, Servers: 80},
		Bins:       4, StartTime: 1_300_000_200, Seed: 42,
		Placements: def.Placements(42, 2),
	}
	truth, err := scenario.Generate(col)
	if err != nil {
		t.Fatal(err)
	}

	// Tail first, so no event is missed.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/api/v1/stream/incidents", nil)
	tail, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Body.Close()
	if tail.StatusCode != http.StatusOK {
		t.Fatalf("tail status %d", tail.StatusCode)
	}
	events := make(chan rootcause.StreamEvent, 64)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(tail.Body)
		sc.Buffer(make([]byte, 64*1024), 4<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if !bytes.HasPrefix(line, []byte("data:")) {
				continue
			}
			var ev rootcause.StreamEvent
			if err := json.Unmarshal(bytes.TrimSpace(line[len("data:"):]), &ev); err == nil {
				events <- ev
			}
		}
	}()

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, rec := range col.Sorted() {
		if err := enc.Encode(rec); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(srv.URL+"/api/v1/stream/ingest", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var accepted struct {
		Ingested uint64 `json:"ingested"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	// Drain seals the tail bins and waits out the watcher; the SSE feed
	// then closes, ending the collector goroutine.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := hs.sys.DrainLive(ctx); err != nil {
		t.Fatal(err)
	}

	want := truth.Entries[0].Interval
	var extracted *rootcause.StreamEvent
	for ev := range events {
		if ev.Type == rootcause.StreamEventExtracted &&
			ev.Incident.Incident.Interval.Overlaps(want) {
			e := ev
			extracted = &e
		}
	}
	if extracted == nil {
		t.Fatalf("no extracted event over the flood interval %s", want)
	}
	if extracted.Result == nil || len(extracted.Result.Itemsets) == 0 {
		t.Fatal("extracted event carries no itemsets")
	}
	top := extracted.Result.Itemsets[0].Items.String()
	if !strings.Contains(top, "198.19.7.7") {
		t.Fatalf("top itemset %q does not name the flood victim", top)
	}
}
