package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// --- /api/v1 incident surface ---

// stormServer builds the standard test server and piles duplicate
// re-reports of its single alarm on top: 3 detectors x 3 jittered
// copies = 9 alarms total that must collapse into one incident.
func stormServer(t *testing.T) (*httptest.Server, *server, string) {
	t.Helper()
	srv, hs, id := newTestServerFull(t)
	entry, err := hs.sys.Alarm(id)
	if err != nil {
		t.Fatal(err)
	}
	for _, det := range []string{"histogram", "netreflex", "pca"} {
		for _, jitter := range []uint32{0, 40, 80} {
			a := entry.Alarm
			a.ID = ""
			a.Detector = det
			a.Interval.Start += jitter
			hs.sys.FileAlarm(a)
		}
	}
	return srv, hs, id
}

func TestCorrelateAndIncidentEndpoints(t *testing.T) {
	srv, _, id := stormServer(t)

	// POST /api/v1/correlate with an empty body uses the defaults.
	var sum struct {
		AlarmsConsidered int      `json:"alarms_considered"`
		AlarmsKept       int      `json:"alarms_kept"`
		IncidentIDs      []string `json:"incident_ids"`
	}
	if code := postJSON(t, srv.URL+"/api/v1/correlate", "", &sum); code != http.StatusOK {
		t.Fatalf("correlate status %d", code)
	}
	if sum.AlarmsConsidered != 10 {
		t.Fatalf("considered %d alarms, want 10", sum.AlarmsConsidered)
	}
	if len(sum.IncidentIDs) != 1 {
		t.Fatalf("incidents = %v, want exactly one", sum.IncidentIDs)
	}
	incID := sum.IncidentIDs[0]

	// GET /api/v1/incidents lists it.
	var list struct {
		Incidents []struct {
			Incident struct {
				ID       string   `json:"id"`
				AlarmIDs []string `json:"alarm_ids"`
			} `json:"incident"`
			Status string `json:"status"`
		} `json:"incidents"`
	}
	if code := getJSON(t, srv.URL+"/api/v1/incidents", &list); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	if len(list.Incidents) != 1 || list.Incidents[0].Incident.ID != incID {
		t.Fatalf("incident list = %+v", list)
	}
	if list.Incidents[0].Status != "open" {
		t.Fatalf("status = %q, want open", list.Incidents[0].Status)
	}
	if got := len(list.Incidents[0].Incident.AlarmIDs); got != 10 {
		t.Fatalf("incident holds %d alarms, want 10", got)
	}

	// GET /api/v1/incidents/{id} returns the record plus full member
	// entries.
	var detail struct {
		Incident struct {
			Incident struct {
				ID string `json:"id"`
			} `json:"incident"`
		} `json:"incident"`
		Members []struct {
			Alarm struct {
				ID string `json:"id"`
			} `json:"alarm"`
			Status string `json:"status"`
		} `json:"members"`
	}
	if code := getJSON(t, srv.URL+"/api/v1/incidents/"+incID, &detail); code != http.StatusOK {
		t.Fatalf("detail status %d", code)
	}
	if detail.Incident.Incident.ID != incID || len(detail.Members) != 10 {
		t.Fatalf("detail = %+v", detail)
	}
	found := false
	for _, m := range detail.Members {
		if m.Alarm.ID == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("original alarm %s not among members", id)
	}

	var errBody map[string]string
	if code := getJSON(t, srv.URL+"/api/v1/incidents/i404", &errBody); code != http.StatusNotFound {
		t.Fatalf("unknown incident status %d", code)
	}
}

func TestIncidentExtractEndpoint(t *testing.T) {
	srv, _, id := stormServer(t)
	var sum struct {
		IncidentIDs []string `json:"incident_ids"`
	}
	postJSON(t, srv.URL+"/api/v1/correlate", "", &sum)
	if len(sum.IncidentIDs) != 1 {
		t.Fatalf("incidents = %v", sum.IncidentIDs)
	}
	incID := sum.IncidentIDs[0]

	// POST /api/v1/incidents/{id}/extract queues the ONE job.
	var env jobEnvelope
	if code := postJSON(t, srv.URL+"/api/v1/incidents/"+incID+"/extract", "", &env); code != http.StatusAccepted {
		t.Fatalf("extract status %d, want 202", code)
	}
	if env.Job.Kind != "extract-incident" {
		t.Fatalf("job kind = %q", env.Job.Kind)
	}
	pollJobState(t, srv.URL, env.Job.ID, "done")

	var res struct {
		Result extractResponse `json:"result"`
	}
	if code := getJSON(t, srv.URL+"/api/v1/jobs/"+env.Job.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result status %d", code)
	}
	if len(res.Result.Itemsets) == 0 {
		t.Fatal("no itemsets in incident extraction")
	}

	// The lifecycle advanced: incident extracted, members analyzed.
	var detail struct {
		Incident struct {
			Status string `json:"status"`
			Note   string `json:"note"`
		} `json:"incident"`
	}
	getJSON(t, srv.URL+"/api/v1/incidents/"+incID, &detail)
	if detail.Incident.Status != "extracted" {
		t.Fatalf("incident status = %q, want extracted", detail.Incident.Status)
	}
	var entry map[string]any
	getJSON(t, srv.URL+"/api/alarms/"+id, &entry)
	if entry["status"] != "analyzed" {
		t.Fatalf("member alarm status = %v, want analyzed", entry["status"])
	}

	// Unknown incident: 404, no job queued.
	var errBody map[string]string
	if code := postJSON(t, srv.URL+"/api/v1/incidents/i404/extract", "", &errBody); code != http.StatusNotFound {
		t.Fatalf("unknown incident extract status %d", code)
	}

	// The generic job endpoint accepts incident_id too.
	var env2 jobEnvelope
	if code := postJSON(t, srv.URL+"/api/v1/jobs", `{"incident_id":"`+incID+`"}`, &env2); code != http.StatusAccepted {
		t.Fatalf("v1 jobs incident submit status %d", code)
	}
	if env2.Job.Kind != "extract-incident" {
		t.Fatalf("v1 jobs incident kind = %q", env2.Job.Kind)
	}
	pollJobState(t, srv.URL, env2.Job.ID, "done")
}

func TestHealthReportsIncidents(t *testing.T) {
	srv, _, _ := stormServer(t)
	var sum struct {
		IncidentIDs []string `json:"incident_ids"`
	}
	postJSON(t, srv.URL+"/api/v1/correlate", "", &sum)

	var body struct {
		Incidents map[string]int `json:"incidents"`
	}
	if code := getJSON(t, srv.URL+"/api/health", &body); code != http.StatusOK {
		t.Fatalf("health status %d", code)
	}
	if body.Incidents["open"] != 1 {
		t.Fatalf("health incidents = %v, want open:1", body.Incidents)
	}
}
