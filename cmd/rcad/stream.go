// Live streaming surface (-live): continuous NDJSON ingest and the SSE
// incident tail. Both endpoints answer 409 on a system built without
// -live, so the routes are always registered and discoverable.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	rootcause "repro"
	"repro/internal/stream"
)

// ingestMaxLine bounds one NDJSON ingest line; a record is ~200 bytes,
// so 1 MiB only rejects garbage, not traffic.
const ingestMaxLine = 1 << 20

// storeExists reports whether dir already holds a plain or sharded
// flow store.
func storeExists(dir string) bool {
	for _, manifest := range []string{"store.json", "shards.json"} {
		if _, err := os.Stat(filepath.Join(dir, manifest)); err == nil {
			return true
		}
	}
	return false
}

// handleStreamIngest consumes an NDJSON stream of flow records into the
// live pipeline, blocking per record while the ingest buffer is full
// (backpressure propagates to the HTTP client through flow control).
// The response reports how many records were accepted. A malformed line
// fails the request with its line number; records before it are already
// ingested — the stream is append-only, not transactional.
func (s *server) handleStreamIngest(w http.ResponseWriter, r *http.Request) {
	if !s.sys.Live() {
		writeError(w, http.StatusConflict, rootcause.ErrNotLive)
		return
	}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64*1024), ingestMaxLine)
	var n uint64
	for line := 1; sc.Scan(); line++ {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var rec rootcause.Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error": fmt.Sprintf("line %d: %v", line, err), "ingested": n,
			})
			return
		}
		if err := s.sys.Ingest(r.Context(), &rec); err != nil {
			if r.Context().Err() != nil {
				return // client gone; nothing to answer
			}
			status := http.StatusInternalServerError
			if errors.Is(err, stream.ErrClosed) {
				status = http.StatusConflict
			}
			writeJSON(w, status, map[string]any{"error": err.Error(), "ingested": n})
			return
		}
		n++
	}
	if err := sc.Err(); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error(), "ingested": n})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ingested": n})
}

// handleStreamIncidents tails the live incident feed as server-sent
// events: one event per StreamEvent ("incident", "extracted", "error"),
// named by its type. The stream closes when live mode drains or the
// client disconnects; a client that stops reading is torn down by the
// per-event write deadline, and the feed drops events to slow consumers
// rather than stalling the watcher.
func (s *server) handleStreamIncidents(w http.ResponseWriter, r *http.Request) {
	events, cancel, err := s.sys.TailIncidents()
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	defer cancel()
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	s.sseStreams.Add(1)
	defer s.sseStreams.Add(-1)
	rc := http.NewResponseController(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-events:
			if !open {
				return
			}
			raw, err := json.Marshal(ev)
			if err != nil {
				return
			}
			_ = rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, raw); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}
