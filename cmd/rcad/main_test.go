package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	rootcause "repro"
	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/gen"
)

// newTestServer builds a system with a scan scenario and one filed alarm,
// wrapped in an httptest server.
func newTestServer(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	sys, err := rootcause.Create(rootcause.Config{
		StoreDir:    filepath.Join(dir, "flows"),
		AlarmDBPath: filepath.Join(dir, "alarms.json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	scanner := flow.MustParseIP("10.191.64.165")
	victim := flow.MustParseIP("198.19.137.129")
	scenario := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 200},
		Bins:       4, StartTime: 1_300_000_200, Seed: 3,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scanner, Victim: victim, SrcPort: 55548,
				Ports: 1000, FlowsPerPort: 1, Router: 1}, Bin: 2},
		},
	}
	truth, err := scenario.Generate(sys.Store())
	if err != nil {
		t.Fatal(err)
	}
	id := sys.FileAlarm(rootcause.Alarm{
		Detector: "test",
		Interval: truth.Entries[0].Interval,
		Kind:     detector.KindPortScan,
		Meta: []detector.MetaItem{
			{Feature: flow.FeatSrcIP, Value: uint32(scanner)},
		},
	})
	srv := httptest.NewServer((&server{sys: sys}).routes())
	t.Cleanup(srv.Close)
	return srv, id
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestHealth(t *testing.T) {
	srv, _ := newTestServer(t)
	var body map[string]any
	if code := getJSON(t, srv.URL+"/api/health", &body); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if body["status"] != "ok" || body["has_data"] != true {
		t.Fatalf("health = %v", body)
	}
}

func TestAlarmListAndGet(t *testing.T) {
	srv, id := newTestServer(t)
	var list []map[string]any
	if code := getJSON(t, srv.URL+"/api/alarms", &list); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(list) != 1 {
		t.Fatalf("%d alarms", len(list))
	}
	var entry map[string]any
	if code := getJSON(t, srv.URL+"/api/alarms/"+id, &entry); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if entry["status"] != "new" {
		t.Fatalf("entry = %v", entry)
	}
	var errBody map[string]string
	if code := getJSON(t, srv.URL+"/api/alarms/404", &errBody); code != http.StatusNotFound {
		t.Fatalf("unknown alarm status %d", code)
	}
}

func TestExtractEndpoint(t *testing.T) {
	srv, id := newTestServer(t)
	resp, err := http.Post(srv.URL+"/api/alarms/"+id+"/extract", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body extractResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Itemsets) == 0 {
		t.Fatal("no itemsets in response")
	}
	if !strings.Contains(body.Table, "srcIP") {
		t.Fatalf("table missing:\n%s", body.Table)
	}
	if !strings.Contains(body.Itemsets[0].Filter, "src ip 10.191.64.165") {
		t.Fatalf("drill-down filter = %q", body.Itemsets[0].Filter)
	}
	// The alarm is now analyzed.
	var entry map[string]any
	getJSON(t, srv.URL+"/api/alarms/"+id, &entry)
	if entry["status"] != "analyzed" {
		t.Fatalf("post-extract status = %v", entry["status"])
	}
}

func TestVerdictEndpoint(t *testing.T) {
	srv, id := newTestServer(t)
	resp, err := http.Post(srv.URL+"/api/alarms/"+id+"/verdict", "application/json",
		strings.NewReader(`{"validated":true,"note":"confirmed"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var entry map[string]any
	getJSON(t, srv.URL+"/api/alarms/"+id, &entry)
	if entry["status"] != "validated" {
		t.Fatalf("status = %v", entry["status"])
	}
	// Bad body.
	resp, err = http.Post(srv.URL+"/api/alarms/"+id+"/verdict", "application/json",
		strings.NewReader("{broken"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status %d", resp.StatusCode)
	}
}

func TestFlowsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	var body struct {
		Total    int      `json:"total"`
		Returned int      `json:"returned"`
		Flows    []string `json:"flows"`
	}
	url := srv.URL + "/api/flows?filter=" +
		"src+ip+10.191.64.165+and+src+port+55548&limit=5"
	if code := getJSON(t, url, &body); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if body.Total != 1000 {
		t.Fatalf("total = %d, want 1000 scan flows", body.Total)
	}
	if body.Returned != 5 || len(body.Flows) != 5 {
		t.Fatalf("returned = %d", body.Returned)
	}
	// Bad filter and bad limit.
	var errBody map[string]string
	if code := getJSON(t, srv.URL+"/api/flows?filter=banana", &errBody); code != http.StatusBadRequest {
		t.Fatalf("bad filter status %d", code)
	}
	if code := getJSON(t, srv.URL+"/api/flows?limit=-3", &errBody); code != http.StatusBadRequest {
		t.Fatalf("bad limit status %d", code)
	}
	if code := getJSON(t, srv.URL+"/api/flows?from=abc", &errBody); code != http.StatusBadRequest {
		t.Fatalf("bad from status %d", code)
	}
}
