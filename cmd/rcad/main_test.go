package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	rootcause "repro"
	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/nfstore"
)

// newTestServer builds a system with a scan scenario and one filed alarm,
// wrapped in an httptest server.
func newTestServer(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	sys, err := rootcause.Create(rootcause.Config{
		StoreDir:    filepath.Join(dir, "flows"),
		AlarmDBPath: filepath.Join(dir, "alarms.json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	scanner := flow.MustParseIP("10.191.64.165")
	victim := flow.MustParseIP("198.19.137.129")
	scenario := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 200},
		Bins:       4, StartTime: 1_300_000_200, Seed: 3,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scanner, Victim: victim, SrcPort: 55548,
				Ports: 1000, FlowsPerPort: 1, Router: 1}, Bin: 2},
		},
	}
	truth, err := scenario.Generate(sys.Store())
	if err != nil {
		t.Fatal(err)
	}
	id := sys.FileAlarm(rootcause.Alarm{
		Detector: "test",
		Interval: truth.Entries[0].Interval,
		Kind:     detector.KindPortScan,
		Meta: []detector.MetaItem{
			{Feature: flow.FeatSrcIP, Value: uint32(scanner)},
		},
	})
	srv := httptest.NewServer((&server{sys: sys}).routes())
	t.Cleanup(srv.Close)
	return srv, id
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestHealth(t *testing.T) {
	srv, _ := newTestServer(t)
	var body map[string]any
	if code := getJSON(t, srv.URL+"/api/health", &body); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if body["status"] != "ok" || body["has_data"] != true {
		t.Fatalf("health = %v", body)
	}
}

func TestAlarmListAndGet(t *testing.T) {
	srv, id := newTestServer(t)
	var list []map[string]any
	if code := getJSON(t, srv.URL+"/api/alarms", &list); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(list) != 1 {
		t.Fatalf("%d alarms", len(list))
	}
	var entry map[string]any
	if code := getJSON(t, srv.URL+"/api/alarms/"+id, &entry); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if entry["status"] != "new" {
		t.Fatalf("entry = %v", entry)
	}
	var errBody map[string]string
	if code := getJSON(t, srv.URL+"/api/alarms/404", &errBody); code != http.StatusNotFound {
		t.Fatalf("unknown alarm status %d", code)
	}
}

func TestExtractEndpoint(t *testing.T) {
	srv, id := newTestServer(t)
	resp, err := http.Post(srv.URL+"/api/alarms/"+id+"/extract", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body extractResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Itemsets) == 0 {
		t.Fatal("no itemsets in response")
	}
	if !strings.Contains(body.Table, "srcIP") {
		t.Fatalf("table missing:\n%s", body.Table)
	}
	if !strings.Contains(body.Itemsets[0].Filter, "src ip 10.191.64.165") {
		t.Fatalf("drill-down filter = %q", body.Itemsets[0].Filter)
	}
	// The alarm is now analyzed.
	var entry map[string]any
	getJSON(t, srv.URL+"/api/alarms/"+id, &entry)
	if entry["status"] != "analyzed" {
		t.Fatalf("post-extract status = %v", entry["status"])
	}
}

func TestVerdictEndpoint(t *testing.T) {
	srv, id := newTestServer(t)
	resp, err := http.Post(srv.URL+"/api/alarms/"+id+"/verdict", "application/json",
		strings.NewReader(`{"validated":true,"note":"confirmed"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var entry map[string]any
	getJSON(t, srv.URL+"/api/alarms/"+id, &entry)
	if entry["status"] != "validated" {
		t.Fatalf("status = %v", entry["status"])
	}
	// Bad body.
	resp, err = http.Post(srv.URL+"/api/alarms/"+id+"/verdict", "application/json",
		strings.NewReader("{broken"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status %d", resp.StatusCode)
	}
}

func TestFlowsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	var body struct {
		Total    int      `json:"total"`
		Returned int      `json:"returned"`
		Flows    []string `json:"flows"`
	}
	url := srv.URL + "/api/flows?filter=" +
		"src+ip+10.191.64.165+and+src+port+55548&limit=5"
	if code := getJSON(t, url, &body); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if body.Total != 1000 {
		t.Fatalf("total = %d, want 1000 scan flows", body.Total)
	}
	if body.Returned != 5 || len(body.Flows) != 5 {
		t.Fatalf("returned = %d", body.Returned)
	}
	// Bad filter and bad limit.
	var errBody map[string]string
	if code := getJSON(t, srv.URL+"/api/flows?filter=banana", &errBody); code != http.StatusBadRequest {
		t.Fatalf("bad filter status %d", code)
	}
	if code := getJSON(t, srv.URL+"/api/flows?limit=-3", &errBody); code != http.StatusBadRequest {
		t.Fatalf("bad limit status %d", code)
	}
	if code := getJSON(t, srv.URL+"/api/flows?from=abc", &errBody); code != http.StatusBadRequest {
		t.Fatalf("bad from status %d", code)
	}
}

func TestDetectorsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	var body struct {
		Detectors []string `json:"detectors"`
	}
	if code := getJSON(t, srv.URL+"/api/detectors", &body); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	want := map[string]bool{"netreflex": false, "histogram": false, "pca": false}
	for _, n := range body.Detectors {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("built-in %q missing from %v", n, body.Detectors)
		}
	}
}

// httpDetector is registered from outside the rootcause package and must
// be listed and runnable through the HTTP API.
type httpDetector struct{}

func (httpDetector) Name() string { return "http-test-detector" }

func (httpDetector) Detect(ctx context.Context, _ *nfstore.Store, span flow.Interval) ([]detector.Alarm, error) {
	return []detector.Alarm{{
		Detector: "http-test-detector",
		Interval: flow.Interval{Start: span.Start, End: span.Start + 300},
		Kind:     detector.KindDoS,
	}}, nil
}

func TestDetectEndpoint(t *testing.T) {
	if err := rootcause.RegisterDetector("http-test-detector",
		func(cfg any) (rootcause.Detector, error) { return httpDetector{}, nil }); err != nil {
		t.Fatal(err)
	}
	srv, _ := newTestServer(t)

	// The externally registered detector is listed...
	var listing struct {
		Detectors []string `json:"detectors"`
	}
	getJSON(t, srv.URL+"/api/detectors", &listing)
	if !slices.Contains(listing.Detectors, "http-test-detector") {
		t.Fatalf("registered detector missing from %v", listing.Detectors)
	}

	// ...and usable: POST /api/detect files its alarms.
	resp, err := http.Post(srv.URL+"/api/detect", "application/json",
		strings.NewReader(`{"detector":"http-test-detector","from":1300000200,"to":1300001400}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body struct {
		AlarmIDs []string `json:"alarm_ids"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.AlarmIDs) != 1 {
		t.Fatalf("filed %d alarms, want 1", len(body.AlarmIDs))
	}

	// Unknown detector and bad body are 400s.
	for _, payload := range []string{`{"detector":"frobnicator"}`, `{broken`} {
		resp, err := http.Post(srv.URL+"/api/detect", "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("payload %q: status %d, want 400", payload, resp.StatusCode)
		}
	}
}

func TestExtractBatchEndpoint(t *testing.T) {
	srv, id := newTestServer(t)
	resp, err := http.Post(srv.URL+"/api/extract-batch", "application/json",
		strings.NewReader(`{"alarm_ids":["`+id+`","404"],"concurrency":2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type %q", ct)
	}
	var ok, failed int
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var line batchLine
		if err := dec.Decode(&line); err != nil {
			t.Fatal(err)
		}
		switch {
		case line.Error != "":
			if line.AlarmID != "404" {
				t.Fatalf("unexpected error for %s: %s", line.AlarmID, line.Error)
			}
			failed++
		default:
			if line.AlarmID != id || line.Result == nil || len(line.Result.Itemsets) == 0 {
				t.Fatalf("bad result line: %+v", line)
			}
			ok++
		}
	}
	if ok != 1 || failed != 1 {
		t.Fatalf("ok=%d failed=%d, want 1/1", ok, failed)
	}
	// The extracted alarm is now analyzed; the unknown one obviously not.
	var entry map[string]any
	getJSON(t, srv.URL+"/api/alarms/"+id, &entry)
	if entry["status"] != "analyzed" {
		t.Fatalf("post-batch status = %v", entry["status"])
	}
}

func TestExtractBatchBadRequests(t *testing.T) {
	srv, _ := newTestServer(t)
	for _, payload := range []string{`{"alarm_ids":[]}`, `{broken`} {
		resp, err := http.Post(srv.URL+"/api/extract-batch", "application/json",
			strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("payload %q: status %d, want 400", payload, resp.StatusCode)
		}
	}
}

func TestExtractUnknownAlarmIs404(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Post(srv.URL+"/api/alarms/404/extract", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestMinersEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	var body struct {
		Miners []string `json:"miners"`
	}
	if code := getJSON(t, srv.URL+"/api/miners", &body); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"apriori", "fpgrowth"} {
		if !slices.Contains(body.Miners, want) {
			t.Fatalf("miners = %v, missing %q", body.Miners, want)
		}
	}
}

// TestExtractEndpointMinerSelection runs the single-alarm extract once
// per miner and requires identical itemsets, plus a 400 on an unknown
// miner.
func TestExtractEndpointMinerSelection(t *testing.T) {
	srv, id := newTestServer(t)
	extract := func(body string) extractResponse {
		t.Helper()
		resp, err := http.Post(srv.URL+"/api/alarms/"+id+"/extract", "application/json",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var out extractResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	ap := extract(`{"miner":"apriori"}`)
	fp := extract(`{"miner":"fpgrowth"}`)
	if len(ap.Itemsets) == 0 || len(ap.Itemsets) != len(fp.Itemsets) {
		t.Fatalf("apriori %d itemsets, fpgrowth %d", len(ap.Itemsets), len(fp.Itemsets))
	}
	for i := range ap.Itemsets {
		if ap.Itemsets[i] != fp.Itemsets[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, ap.Itemsets[i], fp.Itemsets[i])
		}
	}

	resp, err := http.Post(srv.URL+"/api/alarms/"+id+"/extract", "application/json",
		strings.NewReader(`{"miner":"frobnicator"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown miner status %d, want 400", resp.StatusCode)
	}
}

// TestExtractBatchMinerSelection drives /api/extract-batch with the
// fpgrowth miner end-to-end.
func TestExtractBatchMinerSelection(t *testing.T) {
	srv, id := newTestServer(t)
	resp, err := http.Post(srv.URL+"/api/extract-batch", "application/json",
		strings.NewReader(`{"alarm_ids":["`+id+`"],"miner":"fpgrowth"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var line batchLine
	if err := json.NewDecoder(resp.Body).Decode(&line); err != nil {
		t.Fatal(err)
	}
	if line.Error != "" {
		t.Fatalf("batch error: %s", line.Error)
	}
	if line.Result == nil || len(line.Result.Itemsets) == 0 {
		t.Fatal("no itemsets in batch result")
	}

	resp, err = http.Post(srv.URL+"/api/extract-batch", "application/json",
		strings.NewReader(`{"alarm_ids":["`+id+`"],"miner":"frobnicator"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown miner status %d, want 400", resp.StatusCode)
	}
}
