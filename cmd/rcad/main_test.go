package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"slices"
	"strings"
	"testing"
	"time"

	rootcause "repro"
	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/nfstore"
)

// newTestServer builds a system with a scan scenario and one filed alarm,
// wrapped in an httptest server.
func newTestServer(t *testing.T) (*httptest.Server, string) {
	srv, _, id := newTestServerFull(t)
	return srv, id
}

// newTestServerFull is newTestServer exposing the handler state (for
// the SSE stream counter) and accepting system construction options.
func newTestServerFull(t *testing.T, opts ...rootcause.Option) (*httptest.Server, *server, string) {
	t.Helper()
	dir := t.TempDir()
	sys, err := rootcause.Create(rootcause.Config{
		StoreDir:    filepath.Join(dir, "flows"),
		AlarmDBPath: filepath.Join(dir, "alarms.json"),
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	scanner := flow.MustParseIP("10.191.64.165")
	victim := flow.MustParseIP("198.19.137.129")
	scenario := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 200},
		Bins:       4, StartTime: 1_300_000_200, Seed: 3,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scanner, Victim: victim, SrcPort: 55548,
				Ports: 1000, FlowsPerPort: 1, Router: 1}, Bin: 2},
		},
	}
	truth, err := scenario.Generate(sys.Store())
	if err != nil {
		t.Fatal(err)
	}
	id := sys.FileAlarm(rootcause.Alarm{
		Detector: "test",
		Interval: truth.Entries[0].Interval,
		Kind:     detector.KindPortScan,
		Meta: []detector.MetaItem{
			{Feature: flow.FeatSrcIP, Value: uint32(scanner)},
		},
	})
	hs := &server{sys: sys}
	srv := httptest.NewServer(hs.routes())
	t.Cleanup(srv.Close)
	return srv, hs, id
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestHealth(t *testing.T) {
	srv, _ := newTestServer(t)
	var body map[string]any
	if code := getJSON(t, srv.URL+"/api/health", &body); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if body["status"] != "ok" || body["has_data"] != true {
		t.Fatalf("health = %v", body)
	}
}

func TestAlarmListAndGet(t *testing.T) {
	srv, id := newTestServer(t)
	var list []map[string]any
	if code := getJSON(t, srv.URL+"/api/alarms", &list); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(list) != 1 {
		t.Fatalf("%d alarms", len(list))
	}
	var entry map[string]any
	if code := getJSON(t, srv.URL+"/api/alarms/"+id, &entry); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if entry["status"] != "new" {
		t.Fatalf("entry = %v", entry)
	}
	var errBody map[string]string
	if code := getJSON(t, srv.URL+"/api/alarms/404", &errBody); code != http.StatusNotFound {
		t.Fatalf("unknown alarm status %d", code)
	}
}

func TestExtractEndpoint(t *testing.T) {
	srv, id := newTestServer(t)
	resp, err := http.Post(srv.URL+"/api/alarms/"+id+"/extract", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body extractResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Itemsets) == 0 {
		t.Fatal("no itemsets in response")
	}
	if !strings.Contains(body.Table, "srcIP") {
		t.Fatalf("table missing:\n%s", body.Table)
	}
	if !strings.Contains(body.Itemsets[0].Filter, "src ip 10.191.64.165") {
		t.Fatalf("drill-down filter = %q", body.Itemsets[0].Filter)
	}
	// The alarm is now analyzed.
	var entry map[string]any
	getJSON(t, srv.URL+"/api/alarms/"+id, &entry)
	if entry["status"] != "analyzed" {
		t.Fatalf("post-extract status = %v", entry["status"])
	}
}

func TestVerdictEndpoint(t *testing.T) {
	srv, id := newTestServer(t)
	resp, err := http.Post(srv.URL+"/api/alarms/"+id+"/verdict", "application/json",
		strings.NewReader(`{"validated":true,"note":"confirmed"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var entry map[string]any
	getJSON(t, srv.URL+"/api/alarms/"+id, &entry)
	if entry["status"] != "validated" {
		t.Fatalf("status = %v", entry["status"])
	}
	// Bad body.
	resp, err = http.Post(srv.URL+"/api/alarms/"+id+"/verdict", "application/json",
		strings.NewReader("{broken"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status %d", resp.StatusCode)
	}
}

func TestFlowsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	var body struct {
		Total    int      `json:"total"`
		Returned int      `json:"returned"`
		Flows    []string `json:"flows"`
	}
	url := srv.URL + "/api/flows?filter=" +
		"src+ip+10.191.64.165+and+src+port+55548&limit=5"
	if code := getJSON(t, url, &body); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if body.Total != 1000 {
		t.Fatalf("total = %d, want 1000 scan flows", body.Total)
	}
	if body.Returned != 5 || len(body.Flows) != 5 {
		t.Fatalf("returned = %d", body.Returned)
	}
	// Bad filter and bad limit.
	var errBody map[string]string
	if code := getJSON(t, srv.URL+"/api/flows?filter=banana", &errBody); code != http.StatusBadRequest {
		t.Fatalf("bad filter status %d", code)
	}
	if code := getJSON(t, srv.URL+"/api/flows?limit=-3", &errBody); code != http.StatusBadRequest {
		t.Fatalf("bad limit status %d", code)
	}
	if code := getJSON(t, srv.URL+"/api/flows?from=abc", &errBody); code != http.StatusBadRequest {
		t.Fatalf("bad from status %d", code)
	}
}

func TestDetectorsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	var body struct {
		Detectors []string `json:"detectors"`
	}
	if code := getJSON(t, srv.URL+"/api/detectors", &body); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	want := map[string]bool{"netreflex": false, "histogram": false, "pca": false}
	for _, n := range body.Detectors {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("built-in %q missing from %v", n, body.Detectors)
		}
	}
}

// httpDetector is registered from outside the rootcause package and must
// be listed and runnable through the HTTP API.
type httpDetector struct{}

func (httpDetector) Name() string { return "http-test-detector" }

func (httpDetector) Detect(ctx context.Context, _ nfstore.Engine, span flow.Interval) ([]detector.Alarm, error) {
	return []detector.Alarm{{
		Detector: "http-test-detector",
		Interval: flow.Interval{Start: span.Start, End: span.Start + 300},
		Kind:     detector.KindDoS,
	}}, nil
}

func TestDetectEndpoint(t *testing.T) {
	if err := rootcause.RegisterDetector("http-test-detector",
		func(cfg any) (rootcause.Detector, error) { return httpDetector{}, nil }); err != nil {
		t.Fatal(err)
	}
	srv, _ := newTestServer(t)

	// The externally registered detector is listed...
	var listing struct {
		Detectors []string `json:"detectors"`
	}
	getJSON(t, srv.URL+"/api/detectors", &listing)
	if !slices.Contains(listing.Detectors, "http-test-detector") {
		t.Fatalf("registered detector missing from %v", listing.Detectors)
	}

	// ...and usable: POST /api/detect files its alarms.
	resp, err := http.Post(srv.URL+"/api/detect", "application/json",
		strings.NewReader(`{"detector":"http-test-detector","from":1300000200,"to":1300001400}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body struct {
		AlarmIDs []string `json:"alarm_ids"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.AlarmIDs) != 1 {
		t.Fatalf("filed %d alarms, want 1", len(body.AlarmIDs))
	}

	// Unknown detector and bad body are 400s.
	for _, payload := range []string{`{"detector":"frobnicator"}`, `{broken`} {
		resp, err := http.Post(srv.URL+"/api/detect", "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("payload %q: status %d, want 400", payload, resp.StatusCode)
		}
	}
}

func TestExtractBatchEndpoint(t *testing.T) {
	srv, id := newTestServer(t)
	resp, err := http.Post(srv.URL+"/api/extract-batch", "application/json",
		strings.NewReader(`{"alarm_ids":["`+id+`","404"],"concurrency":2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type %q", ct)
	}
	var ok, failed int
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var line batchLine
		if err := dec.Decode(&line); err != nil {
			t.Fatal(err)
		}
		switch {
		case line.Error != "":
			if line.AlarmID != "404" {
				t.Fatalf("unexpected error for %s: %s", line.AlarmID, line.Error)
			}
			failed++
		default:
			if line.AlarmID != id || line.Result == nil || len(line.Result.Itemsets) == 0 {
				t.Fatalf("bad result line: %+v", line)
			}
			ok++
		}
	}
	if ok != 1 || failed != 1 {
		t.Fatalf("ok=%d failed=%d, want 1/1", ok, failed)
	}
	// The extracted alarm is now analyzed; the unknown one obviously not.
	var entry map[string]any
	getJSON(t, srv.URL+"/api/alarms/"+id, &entry)
	if entry["status"] != "analyzed" {
		t.Fatalf("post-batch status = %v", entry["status"])
	}
}

func TestExtractBatchBadRequests(t *testing.T) {
	srv, _ := newTestServer(t)
	for _, payload := range []string{`{"alarm_ids":[]}`, `{broken`} {
		resp, err := http.Post(srv.URL+"/api/extract-batch", "application/json",
			strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("payload %q: status %d, want 400", payload, resp.StatusCode)
		}
	}
}

func TestExtractUnknownAlarmIs404(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Post(srv.URL+"/api/alarms/404/extract", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestMinersEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	var body struct {
		Miners []string `json:"miners"`
	}
	if code := getJSON(t, srv.URL+"/api/miners", &body); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"apriori", "fpgrowth"} {
		if !slices.Contains(body.Miners, want) {
			t.Fatalf("miners = %v, missing %q", body.Miners, want)
		}
	}
}

// TestExtractEndpointMinerSelection runs the single-alarm extract once
// per miner and requires identical itemsets, plus a 400 on an unknown
// miner.
func TestExtractEndpointMinerSelection(t *testing.T) {
	srv, id := newTestServer(t)
	extract := func(body string) extractResponse {
		t.Helper()
		resp, err := http.Post(srv.URL+"/api/alarms/"+id+"/extract", "application/json",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var out extractResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	ap := extract(`{"miner":"apriori"}`)
	fp := extract(`{"miner":"fpgrowth"}`)
	if len(ap.Itemsets) == 0 || len(ap.Itemsets) != len(fp.Itemsets) {
		t.Fatalf("apriori %d itemsets, fpgrowth %d", len(ap.Itemsets), len(fp.Itemsets))
	}
	for i := range ap.Itemsets {
		if ap.Itemsets[i] != fp.Itemsets[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, ap.Itemsets[i], fp.Itemsets[i])
		}
	}

	resp, err := http.Post(srv.URL+"/api/alarms/"+id+"/extract", "application/json",
		strings.NewReader(`{"miner":"frobnicator"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown miner status %d, want 400", resp.StatusCode)
	}
}

// TestExtractBatchMinerSelection drives /api/extract-batch with the
// fpgrowth miner end-to-end.
func TestExtractBatchMinerSelection(t *testing.T) {
	srv, id := newTestServer(t)
	resp, err := http.Post(srv.URL+"/api/extract-batch", "application/json",
		strings.NewReader(`{"alarm_ids":["`+id+`"],"miner":"fpgrowth"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var line batchLine
	if err := json.NewDecoder(resp.Body).Decode(&line); err != nil {
		t.Fatal(err)
	}
	if line.Error != "" {
		t.Fatalf("batch error: %s", line.Error)
	}
	if line.Result == nil || len(line.Result.Itemsets) == 0 {
		t.Fatal("no itemsets in batch result")
	}

	resp, err = http.Post(srv.URL+"/api/extract-batch", "application/json",
		strings.NewReader(`{"alarm_ids":["`+id+`"],"miner":"frobnicator"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown miner status %d, want 400", resp.StatusCode)
	}
}

// --- /api/v1 job surface ---

// jobEnvelope is the {"job": ...} wrapper of the v1 endpoints.
type jobEnvelope struct {
	Job struct {
		ID       string `json:"id"`
		Kind     string `json:"kind"`
		State    string `json:"state"`
		Error    string `json:"error"`
		Progress struct {
			Phase     string `json:"phase"`
			Completed int    `json:"completed"`
			Total     int    `json:"total"`
		} `json:"progress"`
	} `json:"job"`
}

// postJSON POSTs a JSON payload and decodes the response into out.
func postJSON(t *testing.T, url, payload string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// batchPayload builds a batch submission body repeating one alarm ID n
// times with concurrency 1 (a deliberately slow job for cancel/saturation
// tests).
func batchPayload(t *testing.T, id string, n int) string {
	t.Helper()
	ids := make([]string, n)
	for i := range ids {
		ids[i] = id
	}
	raw, err := json.Marshal(map[string]any{"alarm_ids": ids, "concurrency": 1})
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// pollJobState polls GET /api/v1/jobs/{id} until the job reaches state.
func pollJobState(t *testing.T, base, jobID, want string) jobEnvelope {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var env jobEnvelope
	for time.Now().Before(deadline) {
		if code := getJSON(t, base+"/api/v1/jobs/"+jobID, &env); code != http.StatusOK {
			t.Fatalf("poll status %d", code)
		}
		if env.Job.State == want {
			return env
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (state %s)", jobID, want, env.Job.State)
	return env
}

// TestV1SubmitPollResult drives the canonical async flow: submit → 202,
// poll status, fetch the result.
func TestV1SubmitPollResult(t *testing.T) {
	srv, id := newTestServer(t)
	var env jobEnvelope
	code := postJSON(t, srv.URL+"/api/v1/jobs", `{"alarm_id":"`+id+`"}`, &env)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	if env.Job.ID == "" || env.Job.Kind != "extract" {
		t.Fatalf("submit envelope = %+v", env)
	}
	pollJobState(t, srv.URL, env.Job.ID, "done")

	var res struct {
		Job    map[string]any  `json:"job"`
		Result extractResponse `json:"result"`
	}
	if code := getJSON(t, srv.URL+"/api/v1/jobs/"+env.Job.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result status %d", code)
	}
	if len(res.Result.Itemsets) == 0 {
		t.Fatal("no itemsets in job result")
	}
	if res.Result.AlarmID != id {
		t.Fatalf("result alarm_id = %q, want %q", res.Result.AlarmID, id)
	}
	// The alarm went through the same workflow as a synchronous extract.
	var entry map[string]any
	getJSON(t, srv.URL+"/api/alarms/"+id, &entry)
	if entry["status"] != "analyzed" {
		t.Fatalf("post-job alarm status = %v", entry["status"])
	}
}

// TestV1LegacyEquivalence: the legacy synchronous endpoint (wrapped
// over the job manager) returns exactly the payload the v1 job result
// carries — one code path, one answer.
func TestV1LegacyEquivalence(t *testing.T) {
	srv, id := newTestServer(t)
	// Legacy payload.
	resp, err := http.Post(srv.URL+"/api/alarms/"+id+"/extract", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var legacy extractResponse
	if err := json.NewDecoder(resp.Body).Decode(&legacy); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(legacy.Itemsets) == 0 {
		t.Fatal("legacy extract returned no itemsets")
	}
	// v1 job result.
	var env jobEnvelope
	postJSON(t, srv.URL+"/api/v1/jobs", `{"alarm_id":"`+id+`"}`, &env)
	pollJobState(t, srv.URL, env.Job.ID, "done")
	var v1 struct {
		Result extractResponse `json:"result"`
	}
	getJSON(t, srv.URL+"/api/v1/jobs/"+env.Job.ID+"/result", &v1)

	lraw, _ := json.Marshal(legacy)
	vraw, _ := json.Marshal(v1.Result)
	if string(lraw) != string(vraw) {
		t.Fatalf("legacy and v1 payloads diverge:\nlegacy %s\n    v1 %s", lraw, vraw)
	}
}

// TestV1BatchJob submits a batch, waits, and fetches the per-alarm
// results array (with a not-found entry for the bogus ID).
func TestV1BatchJob(t *testing.T) {
	srv, id := newTestServer(t)
	var env jobEnvelope
	code := postJSON(t, srv.URL+"/api/v1/jobs",
		`{"alarm_ids":["`+id+`","404"],"concurrency":2}`, &env)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if env.Job.Kind != "extract-batch" {
		t.Fatalf("kind = %q", env.Job.Kind)
	}
	final := pollJobState(t, srv.URL, env.Job.ID, "done")
	if final.Job.Progress.Completed != 2 || final.Job.Progress.Total != 2 {
		t.Fatalf("final progress = %+v", final.Job.Progress)
	}
	var res struct {
		Results []batchLine `json:"results"`
	}
	if code := getJSON(t, srv.URL+"/api/v1/jobs/"+env.Job.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result status %d", code)
	}
	if len(res.Results) != 2 {
		t.Fatalf("%d results", len(res.Results))
	}
	if res.Results[0].AlarmID != id || res.Results[0].Result == nil {
		t.Fatalf("first result = %+v", res.Results[0])
	}
	if res.Results[1].AlarmID != "404" || res.Results[1].Error == "" {
		t.Fatalf("second result = %+v", res.Results[1])
	}
}

// TestV1ResultNotReady: fetching the result of an unfinished job is a
// 409, an unknown job a 404.
func TestV1ResultNotReady(t *testing.T) {
	srv, _, id := newTestServerFull(t, rootcause.WithJobWorkers(1))
	// Park the worker with a long batch so the probe job stays queued.
	var parked jobEnvelope
	postJSON(t, srv.URL+"/api/v1/jobs", batchPayload(t, id, 64), &parked)
	var env jobEnvelope
	code := postJSON(t, srv.URL+"/api/v1/jobs", `{"alarm_id":"`+id+`"}`, &env)
	if code != http.StatusAccepted {
		t.Fatalf("probe submit status %d", code)
	}
	var conflict map[string]any
	if code := getJSON(t, srv.URL+"/api/v1/jobs/"+env.Job.ID+"/result", &conflict); code != http.StatusConflict {
		t.Fatalf("unfinished result status %d, want 409", code)
	}
	var errBody map[string]any
	if code := getJSON(t, srv.URL+"/api/v1/jobs/9999/result", &errBody); code != http.StatusNotFound {
		t.Fatalf("unknown result status %d, want 404", code)
	}
	// Cancel the parked batch so cleanup is fast.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/api/v1/jobs/"+parked.Job.ID, nil)
	http.DefaultClient.Do(req)
}

// TestV1CancelJob cancels a running batch and observes the canceled
// terminal state.
func TestV1CancelJob(t *testing.T) {
	srv, _, id := newTestServerFull(t, rootcause.WithJobWorkers(1))
	var env jobEnvelope
	code := postJSON(t, srv.URL+"/api/v1/jobs", batchPayload(t, id, 200), &env)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/api/v1/jobs/"+env.Job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	final := pollJobState(t, srv.URL, env.Job.ID, "canceled")
	if final.Job.Error == "" {
		t.Fatalf("canceled job carries no error: %+v", final.Job)
	}
	// Canceling again is a 409 (already terminal).
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("re-cancel status %d, want 409", resp.StatusCode)
	}
	// Unknown job: 404.
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/api/v1/jobs/9999", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown cancel status %d, want 404", resp.StatusCode)
	}
}

// TestV1QueueFull429: a saturated manager answers 429 with Retry-After
// instead of blocking the submission.
func TestV1QueueFull429(t *testing.T) {
	srv, _, id := newTestServerFull(t,
		rootcause.WithJobWorkers(1), rootcause.WithJobQueueDepth(1))
	payload := batchPayload(t, id, 200)
	var first, second jobEnvelope
	if code := postJSON(t, srv.URL+"/api/v1/jobs", payload, &first); code != http.StatusAccepted {
		t.Fatalf("first submit status %d", code)
	}
	// The worker may or may not have picked the first job up yet; admit
	// until the queue is provably full, then require the rejection.
	deadline := time.Now().Add(10 * time.Second)
	sawFull := false
	var cancelIDs []string
	cancelIDs = append(cancelIDs, first.Job.ID)
	for time.Now().Before(deadline) {
		resp, err := http.Post(srv.URL+"/api/v1/jobs", "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			resp.Body.Close()
			sawFull = true
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&second); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		cancelIDs = append(cancelIDs, second.Job.ID)
	}
	if !sawFull {
		t.Fatal("queue never rejected a submission")
	}
	for _, jid := range cancelIDs {
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/api/v1/jobs/"+jid, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}
}

// TestV1JobListAndSubmitValidation: the listing carries submitted jobs;
// malformed submissions are 400s.
func TestV1JobListAndSubmitValidation(t *testing.T) {
	srv, id := newTestServer(t)
	var env jobEnvelope
	postJSON(t, srv.URL+"/api/v1/jobs", `{"alarm_id":"`+id+`"}`, &env)
	pollJobState(t, srv.URL, env.Job.ID, "done")
	var listing struct {
		Jobs []map[string]any `json:"jobs"`
	}
	if code := getJSON(t, srv.URL+"/api/v1/jobs", &listing); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	if len(listing.Jobs) == 0 {
		t.Fatal("job listing is empty")
	}
	for _, payload := range []string{
		`{}`,                                     // neither alarm_id nor alarm_ids
		`{broken`,                                // bad JSON
		`{"alarm_id":"1","miner":"frobnicator"}`, // unknown miner
	} {
		var errBody map[string]any
		if code := postJSON(t, srv.URL+"/api/v1/jobs", payload, &errBody); code != http.StatusBadRequest {
			t.Fatalf("payload %q: status %d, want 400", payload, code)
		}
	}
	// Unknown job status fetch is a 404.
	var errBody map[string]any
	if code := getJSON(t, srv.URL+"/api/v1/jobs/9999", &errBody); code != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", code)
	}
}

// readSSE consumes one SSE stream, returning the event names in order.
func readSSE(t *testing.T, body io.Reader) []string {
	t.Helper()
	var events []string
	scanner := bufio.NewScanner(body)
	for scanner.Scan() {
		line := scanner.Text()
		if strings.HasPrefix(line, "event: ") {
			events = append(events, strings.TrimPrefix(line, "event: "))
		}
	}
	return events
}

// TestV1EventsStream: the SSE stream delivers progress events and a
// final "done" event, then ends.
func TestV1EventsStream(t *testing.T) {
	srv, id := newTestServer(t)
	var env jobEnvelope
	postJSON(t, srv.URL+"/api/v1/jobs", `{"alarm_id":"`+id+`"}`, &env)
	resp, err := http.Get(srv.URL + "/api/v1/jobs/" + env.Job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type %q", ct)
	}
	events := readSSE(t, resp.Body)
	if len(events) == 0 {
		t.Fatal("no events received")
	}
	if events[len(events)-1] != "done" {
		t.Fatalf("last event %q, want done (events %v)", events[len(events)-1], events)
	}
	// Subscribing to the finished job yields its terminal snapshot.
	resp2, err := http.Get(srv.URL + "/api/v1/jobs/" + env.Job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	events2 := readSSE(t, resp2.Body)
	if len(events2) != 1 || events2[0] != "done" {
		t.Fatalf("terminal-job events = %v, want [done]", events2)
	}
	// Unknown job: 404.
	resp3, err := http.Get(srv.URL + "/api/v1/jobs/9999/events")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown events status %d, want 404", resp3.StatusCode)
	}
}

// TestV1EventsClientDisconnect: dropping the SSE connection detaches
// the stream (observable through the server's stream counter) without
// disturbing the job.
func TestV1EventsClientDisconnect(t *testing.T) {
	srv, hs, id := newTestServerFull(t, rootcause.WithJobWorkers(1))
	var env jobEnvelope
	postJSON(t, srv.URL+"/api/v1/jobs", batchPayload(t, id, 200), &env)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		srv.URL+"/api/v1/jobs/"+env.Job.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the first event so the stream is live, then hang up.
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatal(err)
	}
	if n := hs.sseStreams.Load(); n != 1 {
		t.Fatalf("active streams = %d, want 1", n)
	}
	cancel()
	resp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for hs.sseStreams.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("SSE handler never terminated after client disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The job is unaffected: still known, and cancellable through the
	// API as usual.
	var probe jobEnvelope
	if code := getJSON(t, srv.URL+"/api/v1/jobs/"+env.Job.ID, &probe); code != http.StatusOK {
		t.Fatalf("job vanished after subscriber disconnect: %d", code)
	}
	delReq, _ := http.NewRequest(http.MethodDelete, srv.URL+"/api/v1/jobs/"+env.Job.ID, nil)
	if resp, err := http.DefaultClient.Do(delReq); err == nil {
		resp.Body.Close()
	}
}

// TestHealthReportsJobs: /api/health counts jobs by state and open
// event streams.
func TestHealthReportsJobs(t *testing.T) {
	srv, id := newTestServer(t)
	var env jobEnvelope
	postJSON(t, srv.URL+"/api/v1/jobs", `{"alarm_id":"`+id+`"}`, &env)
	pollJobState(t, srv.URL, env.Job.ID, "done")
	var body struct {
		Jobs         map[string]int `json:"jobs"`
		EventStreams int            `json:"event_streams"`
	}
	if code := getJSON(t, srv.URL+"/api/health", &body); code != http.StatusOK {
		t.Fatalf("health status %d", code)
	}
	if body.Jobs["done"] == 0 {
		t.Fatalf("health jobs = %v, want a done job", body.Jobs)
	}
}
