// Command rcad serves the HTTP JSON backend of the paper's operator GUI:
// listing alarms, running detection and extraction, drilling down to raw
// flows with nfdump-style filters, and recording verdicts. The paper's
// front-end is a GUI over exactly these operations; any HTTP client can
// drive this backend.
//
// Usage:
//
//	rcad -store /tmp/flows -alarmdb /tmp/alarms.json -listen :8642 \
//	     -query-parallelism 8 -job-workers 4 -job-queue 64
//
// Versioned job API (the production surface — submit, poll, fetch):
//
//	POST   /api/v1/jobs             body: {"alarm_id":"1","miner":"fpgrowth","ranking":"lift"}
//	                                  or: {"alarm_ids":["1","2"],"concurrency":4}
//	                                  or: {"incident_id":"i1"}
//	GET    /api/v1/jobs             list jobs (queued, running, retained)
//	GET    /api/v1/jobs/{id}        status + live progress
//	DELETE /api/v1/jobs/{id}        cancel (queued or running)
//	GET    /api/v1/jobs/{id}/result final result of a finished job
//	GET    /api/v1/jobs/{id}/events SSE stream of status/progress events
//
// Incident API (alarm dedup + temporal correlation, docs/incidents.md):
//
//	POST /api/v1/correlate               optional body: {"from":U,"to":U,
//	                                     "dedup_window":300,"cluster_gap":600,
//	                                     "min_confidence":0.5}
//	GET  /api/v1/incidents?from=U&to=U   list stored incidents
//	GET  /api/v1/incidents/{id}          one incident + member alarms + chain
//	POST /api/v1/incidents/{id}/extract  submit the incident's ONE extraction
//	                                     job (202 + job status)
//
// Streaming API (with -live; docs/streaming.md):
//
//	POST /api/v1/stream/ingest     NDJSON flow records, ingested continuously
//	                               (backpressure propagates via flow control)
//	GET  /api/v1/stream/incidents  SSE tail of auto-correlated, auto-extracted
//	                               incidents
//
// Submissions are admission-controlled: a full job queue answers 429
// (with Retry-After) instead of stacking blocked connections.
//
// Legacy synchronous endpoints (thin wrappers over the same job
// manager — submit + wait, one code path for both surfaces):
//
//	GET  /api/health
//	GET  /api/detectors
//	GET  /api/miners
//	POST /api/detect                body: {"detector":"netreflex","from":UNIX,"to":UNIX}
//	GET  /api/alarms?from=UNIX&to=UNIX
//	GET  /api/alarms/{id}
//	POST /api/alarms/{id}/extract   optional body: {"miner":"fpgrowth","ranking":"lift"}
//	POST /api/extract-batch         body: {"alarm_ids":["1","2"],"concurrency":4,"miner":"fpgrowth","ranking":"lift"}
//	POST /api/alarms/{id}/verdict   body: {"validated":true,"note":"..."}
//	GET  /api/flows?from=UNIX&to=UNIX&filter=EXPR&limit=N
//
// Every handler runs under its request's context: a disconnecting
// client aborts the store scan it was waiting for, and the legacy
// wrappers cancel their job on disconnect. /api/extract-batch streams
// NDJSON: one result object per line, in completion order. The server
// drains in-flight requests on SIGINT or SIGTERM via
// http.Server.Shutdown and always closes the system so jobs wind down,
// the flow store flushes and the alarm database persists.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	rootcause "repro"
	"repro/internal/alarmdb"
	"repro/internal/flow"
	"repro/internal/shardstore"
)

// splitList parses a comma-separated flag (-peers, -live-detectors) into
// its non-empty elements.
func splitList(s string) []string {
	var items []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			items = append(items, p)
		}
	}
	return items
}

func main() {
	var (
		storeDir = flag.String("store", "", "flow store directory (required)")
		dbPath   = flag.String("alarmdb", "", "alarm database JSON path")
		listen   = flag.String("listen", ":8642", "listen address")
		drain    = flag.Duration("drain", 30*time.Second, "shutdown drain timeout")
		queryPar = flag.Int("query-parallelism", 0,
			"concurrent segment scans per store query (0 = min(GOMAXPROCS, 8), 1 = serial)")
		jobWorkers = flag.Int("job-workers", 0,
			"concurrent extraction jobs (0 = GOMAXPROCS)")
		jobQueue = flag.Int("job-queue", 0,
			"submitted jobs that may wait beyond the running ones before 429 (0 = 64)")
		resultTTL = flag.Duration("result-ttl", 0,
			"how long finished job results stay fetchable (0 = 15m)")
		zmCache = flag.Int("zonemap-cache", 0,
			"decoded zone-map sidecars cached in memory, LRU beyond (0 = 4096)")
		segFormat = flag.Int("segment-format", 0,
			"on-disk format for newly created segments: 1 = fixed rows, 2 = column blocks (0 = store default)")
		peers = flag.String("peers", "",
			"comma-separated peer rcad URLs; serve as cluster coordinator over their /api/v1/shard endpoints instead of a local store")
		peerTimeout = flag.Duration("peer-timeout", 0,
			"per-peer timeout for unary cluster calls (0 = 10s)")
		degraded = flag.Bool("degraded", false,
			"return partial results when some (not all) shards fail instead of erroring")
		live = flag.Bool("live", false,
			"start the live streaming pipeline: accept continuous ingest on POST /api/v1/stream/ingest, run online detectors, auto-correlate and auto-extract incidents (local store only)")
		liveDetectors = flag.String("live-detectors", "",
			"comma-separated online detectors for -live (empty = cusum,sketch)")
		sealLag = flag.Uint("seal-lag", 0,
			"with -live, seconds past a bin's end before it seals (grace for out-of-order records)")
	)
	flag.Usage = func() {
		fmt.Fprint(flag.CommandLine.Output(), `usage: rcad -store DIR [flags]

Serve the HTTP JSON backend of the paper's operator GUI: listing
alarms, running detection and extraction, drilling down to raw flows
with nfdump-style filters, and recording verdicts. Extractions run as
asynchronous jobs on a bounded worker pool; the legacy synchronous
endpoints wrap the same job manager.

Job API (versioned):
  POST   /api/v1/jobs             {"alarm_id":"1","miner":"fpgrowth","ranking":"lift"}
                                  or {"alarm_ids":["1","2"],"concurrency":4}
                                  or {"incident_id":"i1"}
                                  202 on admit, 429 + Retry-After when the
                                  queue is full
  GET    /api/v1/jobs             list jobs (queued, running, retained)
  GET    /api/v1/jobs/{id}        status + live progress
  DELETE /api/v1/jobs/{id}        cancel (queued or running)
  GET    /api/v1/jobs/{id}/result final result (409 while unfinished)
  GET    /api/v1/jobs/{id}/events SSE stream of status/progress events

Incident API (alarm dedup + temporal correlation):
  POST /api/v1/correlate              optional {"from":U,"to":U,"dedup_window":300,
                                      "cluster_gap":600,"min_confidence":0.5}
  GET  /api/v1/incidents?from=U&to=U  list stored incidents
  GET  /api/v1/incidents/{id}         one incident + member alarms + chain
  POST /api/v1/incidents/{id}/extract submit the incident's ONE extraction job

Streaming API (with -live):
  POST /api/v1/stream/ingest      NDJSON flow records, continuous ingest
  GET  /api/v1/stream/incidents   SSE tail of auto-extracted incidents

Legacy endpoints (synchronous wrappers over the job manager):
  GET  /api/health                (query_stats, job counts, event streams,
                                  and with -live the streaming census)
  GET  /api/detectors
  GET  /api/miners
  POST /api/detect                {"detector":"netreflex","from":U,"to":U}
  GET  /api/alarms?from=U&to=U
  GET  /api/alarms/{id}
  POST /api/alarms/{id}/extract   optional {"miner":"fpgrowth","ranking":"lift"}
  POST /api/extract-batch         {"alarm_ids":["1","2"],"concurrency":4,"miner":"fpgrowth","ranking":"lift"}
  POST /api/alarms/{id}/verdict   {"validated":true,"note":"..."}
  GET  /api/flows?from=U&to=U&filter=EXPR&limit=N

Cluster mode:
  Every rcad node serves its own store as one shard under /api/v1/shard/.
  A node started with -peers URL1,URL2,... opens no local store; it
  coordinates queries, detection and extraction by scatter-gather over
  the peers' shard endpoints (per-peer timeouts, bounded retries; a dead
  peer fails with its URL named, or -degraded returns partial results).

Example:
  rcad -store /tmp/flows -alarmdb /tmp/flows/alarms.json -listen :8642
  rcad -peers http://10.0.0.1:8642,http://10.0.0.2:8642 -alarmdb /tmp/alarms.json

Flags:
`)
		flag.PrintDefaults()
	}
	flag.Parse()
	peerList := splitList(*peers)
	if *storeDir == "" && len(peerList) == 0 {
		fmt.Fprintln(os.Stderr, "rcad: -store is required (or -peers for cluster mode)")
		flag.Usage()
		os.Exit(2)
	}
	opts := []rootcause.Option{
		rootcause.WithQueryParallelism(*queryPar),
		rootcause.WithJobWorkers(*jobWorkers),
		rootcause.WithJobQueueDepth(*jobQueue),
		rootcause.WithResultTTL(*resultTTL),
		rootcause.WithZoneMapCacheSize(*zmCache),
		rootcause.WithSegmentFormat(uint16(*segFormat)),
		rootcause.WithDegradedReads(*degraded),
	}
	if len(peerList) > 0 {
		opts = append(opts, rootcause.WithPeers(peerList), rootcause.WithPeerTimeout(*peerTimeout))
	}
	if *live {
		if len(peerList) > 0 {
			fmt.Fprintln(os.Stderr, "rcad: -live requires a local store, not cluster mode (-peers)")
			os.Exit(2)
		}
		opts = append(opts, rootcause.WithLive(rootcause.LiveConfig{
			Detectors:      splitList(*liveDetectors),
			SealLagSeconds: uint32(*sealLag),
		}))
	}
	open := rootcause.Open
	if *live && !storeExists(*storeDir) {
		// A live server may start cold: records arrive over the ingest
		// endpoint, so an empty directory is a fresh store, not an error.
		open = rootcause.Create
	}
	sys, err := open(rootcause.Config{StoreDir: *storeDir, AlarmDBPath: *dbPath}, opts...)
	if err != nil {
		log.Fatal("rcad: ", err)
	}
	if err := run(sys, *listen, *drain); err != nil {
		sys.Close()
		log.Fatal("rcad: ", err)
	}
	if err := sys.Close(); err != nil {
		log.Fatal("rcad: close: ", err)
	}
}

// run serves until SIGINT/SIGTERM, then drains in-flight requests via
// Shutdown. Requests still running when the drain timeout expires have
// their contexts cancelled so store scans and extractions abort cleanly
// instead of being cut mid-write.
func run(sys *rootcause.System, listen string, drain time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// baseCtx outlives the signal: in-flight requests keep working during
	// the drain window and are cancelled only when it runs out.
	baseCtx, baseCancel := context.WithCancel(context.Background())
	defer baseCancel()
	srv := &http.Server{
		Addr:        listen,
		Handler:     (&server{sys: sys}).routes(),
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	errCh := make(chan error, 1)
	go func() {
		// The resolved address matters when -listen used port 0 (tests
		// and scripts parse this line to find the server).
		log.Printf("rcad: serving on %s", ln.Addr())
		errCh <- srv.Serve(ln)
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("rcad: shutting down (drain %s)", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if sys.Live() {
		// Drain the live pipeline first: seal the open bins, let the
		// watcher and in-flight auto-extractions finish, then close the
		// incident feed — which releases the SSE tails that would
		// otherwise hold Shutdown open for the whole window.
		if derr := sys.DrainLive(shutdownCtx); derr != nil {
			log.Printf("rcad: live drain: %v", derr)
		}
	}
	err = srv.Shutdown(shutdownCtx)
	if err != nil {
		// Drain window expired: cancel the stragglers' contexts and force
		// the remaining connections closed.
		baseCancel()
		srv.Close()
	}
	if serveErr := <-errCh; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	if err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}

// server holds the handler state.
type server struct {
	sys *rootcause.System
	// sseStreams counts open /api/v1/jobs/{id}/events connections
	// (surfaced in /api/health; tests use it to observe disconnects).
	sseStreams atomic.Int64
}

// routes builds the HTTP mux.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	// Versioned job API.
	mux.HandleFunc("POST /api/v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleJobEvents)

	// Streaming surface (-live): continuous ingest + SSE incident tail.
	mux.HandleFunc("POST /api/v1/stream/ingest", s.handleStreamIngest)
	mux.HandleFunc("GET /api/v1/stream/incidents", s.handleStreamIncidents)

	mux.HandleFunc("POST /api/v1/correlate", s.handleCorrelate)
	mux.HandleFunc("GET /api/v1/incidents", s.handleIncidents)
	mux.HandleFunc("GET /api/v1/incidents/{id}", s.handleIncident)
	mux.HandleFunc("POST /api/v1/incidents/{id}/extract", s.handleIncidentExtract)
	// Legacy surface (extraction endpoints wrap the job manager).
	mux.HandleFunc("GET /api/health", s.handleHealth)
	mux.HandleFunc("GET /api/detectors", s.handleDetectors)
	mux.HandleFunc("GET /api/miners", s.handleMiners)
	mux.HandleFunc("POST /api/detect", s.handleDetect)
	mux.HandleFunc("GET /api/alarms", s.handleAlarms)
	mux.HandleFunc("GET /api/alarms/{id}", s.handleAlarm)
	mux.HandleFunc("POST /api/alarms/{id}/extract", s.handleExtract)
	mux.HandleFunc("POST /api/extract-batch", s.handleExtractBatch)
	mux.HandleFunc("POST /api/alarms/{id}/verdict", s.handleVerdict)
	mux.HandleFunc("GET /api/flows", s.handleFlows)
	// Shard surface: this node's store served as one shard of a cluster,
	// for coordinator peers running with -peers (framed binary /query,
	// JSON aggregations — see internal/shardstore).
	mux.Handle("/api/v1/shard/", http.StripPrefix("/api/v1/shard", shardstore.Handler(s.sys.Store())))
	return mux
}

// writeJSON writes a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("rcad: encode response: %v", err)
	}
}

// writeError writes a JSON error envelope.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// parseSpan reads from/to query parameters (0 = open end).
func parseSpan(r *http.Request) (flow.Interval, error) {
	parse := func(key string, def uint32) (uint32, error) {
		v := r.URL.Query().Get(key)
		if v == "" {
			return def, nil
		}
		n, err := strconv.ParseUint(v, 10, 32)
		if err != nil {
			return 0, fmt.Errorf("bad %s: %v", key, err)
		}
		return uint32(n), nil
	}
	from, err := parse("from", 0)
	if err != nil {
		return flow.Interval{}, err
	}
	to, err := parse("to", ^uint32(0))
	if err != nil {
		return flow.Interval{}, err
	}
	return flow.Interval{Start: from, End: to}, nil
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	// The span probe doubles as the liveness check: in cluster mode an
	// unreachable peer fails it, which degrades the status but never
	// stops health from answering — the per-shard breakdown below names
	// the dead shard.
	status := "ok"
	span, ok, err := s.sys.Store().Span()
	if err != nil {
		status = "degraded"
		ok = false
	}
	jobsByState := map[rootcause.JobState]int{}
	for _, j := range s.sys.Jobs() {
		jobsByState[j.State]++
	}
	// Segment counts by on-disk format ("v1": n, "v2": m) so operators can
	// watch a migration converge; a per-segment header sniff is cheap at
	// the bin counts a store holds. Errors degrade to an absent field —
	// health must answer even over a half-written store.
	formats := map[string]int{}
	if counts, err := s.sys.Store().SegmentFormats(); err == nil {
		for v, n := range counts {
			formats[fmt.Sprintf("v%d", v)] = n
		}
	}
	health := map[string]any{
		"status":          status,
		"store_span":      span.String(),
		"has_data":        ok,
		"query_stats":     s.sys.QueryStats(),
		"segment_formats": formats,
		"write_format":    fmt.Sprintf("v%d", s.sys.Store().SegmentFormat()),
		"jobs":            jobsByState,
		"incidents":       s.sys.IncidentCounts(),
		"event_streams":   s.sseStreams.Load(),
	}
	// Live mode adds the streaming census: open bins, stream clock,
	// ingest rate, drops, watcher backlog and the automation counters.
	if st := s.sys.StreamStats(); st != nil {
		health["stream"] = st
	}
	// Sharded and cluster-mode systems add the per-shard breakdown: the
	// rollup above stays, each shard's counters and segment census (or
	// its error, for an unreachable peer) are listed alongside.
	if shards := s.sys.ShardStats(); shards != nil {
		perShard := make([]map[string]any, len(shards))
		for i, sh := range shards {
			row := map[string]any{"shard": sh.Shard}
			if sh.Err != "" {
				row["error"] = sh.Err
			} else {
				row["query_stats"] = sh.Stats
				f := map[string]int{}
				for v, n := range sh.Formats {
					f[fmt.Sprintf("v%d", v)] = n
				}
				row["segment_formats"] = f
			}
			perShard[i] = row
		}
		health["shards"] = perShard
	}
	writeJSON(w, http.StatusOK, health)
}

func (s *server) handleDetectors(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"detectors": rootcause.DetectorNames(),
	})
}

func (s *server) handleMiners(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"miners": rootcause.MinerNames(),
	})
}

// extractOptions validates the optional miner and ranking selections
// from a request body and turns them into call options. Unknown names
// are the caller's mistake.
func extractOptions(minerName, ranking string) ([]rootcause.Option, error) {
	var opts []rootcause.Option
	if minerName != "" {
		if !slices.Contains(rootcause.MinerNames(), minerName) {
			return nil, fmt.Errorf("unknown miner %q (have %v)", minerName, rootcause.MinerNames())
		}
		opts = append(opts, rootcause.WithMiner(minerName))
	}
	switch ranking {
	case "":
	case rootcause.RankingSupport, rootcause.RankingLift, rootcause.RankingWeighted:
		opts = append(opts, rootcause.WithRanking(ranking))
	default:
		return nil, fmt.Errorf("unknown ranking %q (have %q, %q, %q)", ranking,
			rootcause.RankingSupport, rootcause.RankingLift, rootcause.RankingWeighted)
	}
	return opts, nil
}

func (s *server) handleDetect(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Detector string `json:"detector"`
		From     uint32 `json:"from"`
		To       uint32 `json:"to"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad body: %v", err))
		return
	}
	span := flow.Interval{Start: body.From, End: body.To}
	if body.To == 0 {
		span.End = ^uint32(0)
	}
	ids, err := s.sys.Detect(r.Context(), body.Detector, span)
	if err != nil {
		// Unknown detector / bad config is the caller's mistake; a failed
		// store scan is ours.
		status := http.StatusInternalServerError
		if errors.Is(err, rootcause.ErrDetectorSetup) {
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"alarm_ids": ids})
}

func (s *server) handleAlarms(w http.ResponseWriter, r *http.Request) {
	span, err := parseSpan(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, s.sys.Alarms(span))
}

func (s *server) handleAlarm(w http.ResponseWriter, r *http.Request) {
	entry, err := s.sys.Alarm(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, entry)
}

// extractResponse is the JSON shape of an extraction result.
type extractResponse struct {
	AlarmID          string        `json:"alarm_id"`
	CandidateFlows   uint64        `json:"candidate_flows"`
	CandidatePackets uint64        `json:"candidate_packets"`
	Prefiltered      bool          `json:"prefiltered"`
	Itemsets         []itemsetJSON `json:"itemsets"`
	Table            string        `json:"table"`
}

// itemsetJSON is one itemset row with its drill-down filter.
type itemsetJSON struct {
	Items         string  `json:"items"`
	FlowSupport   uint64  `json:"flow_support"`
	PacketSupport uint64  `json:"packet_support"`
	Score         float64 `json:"score"`
	Filter        string  `json:"filter"`
}

// toExtractResponse converts a result for the wire.
func toExtractResponse(id string, res *rootcause.Result) extractResponse {
	resp := extractResponse{
		AlarmID:          id,
		CandidateFlows:   res.CandidateFlows,
		CandidatePackets: res.CandidatePackets,
		Prefiltered:      res.Prefiltered,
		Table:            res.Table().String(),
	}
	for i := range res.Itemsets {
		rep := &res.Itemsets[i]
		resp.Itemsets = append(resp.Itemsets, itemsetJSON{
			Items:         rep.Items.String(),
			FlowSupport:   rep.FlowSupport,
			PacketSupport: rep.PacketSupport,
			Score:         rep.Score,
			Filter:        rep.Filter().String(),
		})
	}
	return resp
}

// submitError maps a Submit failure to an HTTP status: a full queue is
// 429 (with Retry-After, the admission-control contract), anything else
// is the caller's mistake.
func submitError(w http.ResponseWriter, err error) {
	if errors.Is(err, rootcause.ErrJobQueueFull) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	writeError(w, http.StatusBadRequest, err)
}

func (s *server) handleExtract(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// The body is optional (legacy clients POST nothing); when present it
	// may select the miner and ranking mode.
	var body struct {
		Miner   string `json:"miner"`
		Ranking string `json:"ranking"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad body: %v", err))
		return
	}
	opts, err := extractOptions(body.Miner, body.Ranking)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The synchronous endpoint is a thin wrapper over the job manager:
	// submit + wait, the exact code path of POST /api/v1/jobs. The job
	// is transient — this handler is its only consumer, so the result
	// must not sit in retention after the response. A disconnecting
	// client cancels the job it was waiting for.
	jobID, err := s.sys.Submit(rootcause.JobRequest{AlarmID: id},
		append(opts, rootcause.WithTransientJob())...)
	if err != nil {
		submitError(w, err)
		return
	}
	res, err := s.sys.Wait(r.Context(), jobID)
	if err != nil {
		if r.Context().Err() != nil {
			s.sys.CancelJob(jobID)
			return
		}
		status := http.StatusBadRequest
		if errors.Is(err, alarmdb.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, toExtractResponse(id, res.Result))
}

// batchLine is one NDJSON line of /api/extract-batch and one entry of a
// batch job's /api/v1 result payload.
type batchLine struct {
	AlarmID string           `json:"alarm_id"`
	Error   string           `json:"error,omitempty"`
	Result  *extractResponse `json:"result,omitempty"`
}

// toBatchLine converts one per-alarm outcome for the wire.
func toBatchLine(res rootcause.ExtractResult) batchLine {
	line := batchLine{AlarmID: res.AlarmID}
	if res.Err != nil {
		line.Error = res.Err.Error()
	} else {
		resp := toExtractResponse(res.AlarmID, res.Result)
		line.Result = &resp
	}
	return line
}

// streamWriteTimeout bounds one streamed write (an NDJSON batch line or
// an SSE event) to the client. A stalled client — connected but not
// reading — must never pin a goroutine behind TCP backpressure: for the
// NDJSON sink that goroutine is a shared job-worker slot, for SSE it is
// the handler plus its subscription. The deadline turns the stall into
// a write error and the stream tears down.
const streamWriteTimeout = 30 * time.Second

// ndjsonSink streams batch results as NDJSON lines from the job's
// worker goroutine. close() fences late writes: once the handler
// returns (client disconnect) the worker must not touch the
// ResponseWriter again. onDead (set once after submit) is invoked when
// a write fails so the handler's job stops doing unobservable work.
type ndjsonSink struct {
	mu     sync.Mutex
	closed bool
	dead   bool // a write failed; skip the rest
	enc    *json.Encoder
	rc     *http.ResponseController
	onDead func()
}

func (n *ndjsonSink) write(res rootcause.ExtractResult) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed || n.dead {
		return
	}
	// Per-line deadline: a client that stops reading makes Encode fail
	// instead of blocking the shared worker behind TCP backpressure.
	_ = n.rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
	if err := n.enc.Encode(toBatchLine(res)); err != nil {
		log.Printf("rcad: encode batch line: %v", err)
		n.dead = true
		if n.onDead != nil {
			n.onDead()
		}
		return
	}
	_ = n.rc.Flush()
}

// setOnDead installs the dead-client callback (after the job ID is
// known).
func (n *ndjsonSink) setOnDead(fn func()) {
	n.mu.Lock()
	n.onDead = fn
	dead := n.dead
	n.mu.Unlock()
	if dead {
		fn()
	}
}

func (n *ndjsonSink) close() {
	n.mu.Lock()
	n.closed = true
	// Clear the per-line deadline so a kept-alive connection is not
	// poisoned for its next request.
	_ = n.rc.SetWriteDeadline(time.Time{})
	n.mu.Unlock()
}

func (s *server) handleExtractBatch(w http.ResponseWriter, r *http.Request) {
	var body struct {
		AlarmIDs    []string `json:"alarm_ids"`
		Concurrency int      `json:"concurrency"`
		Miner       string   `json:"miner"`
		Ranking     string   `json:"ranking"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad body: %v", err))
		return
	}
	if len(body.AlarmIDs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("alarm_ids is empty"))
		return
	}
	opts, err := extractOptions(body.Miner, body.Ranking)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if body.Concurrency > 0 {
		opts = append(opts, rootcause.WithConcurrency(body.Concurrency))
	}
	// The synchronous NDJSON endpoint wraps a batch job: results stream
	// through a WithBatchResults sink as each alarm completes, while the
	// handler just waits for the job (canceling it when the client
	// disconnects mid-stream or stalls past the write deadline).
	sink := &ndjsonSink{enc: json.NewEncoder(w), rc: http.NewResponseController(w)}
	defer sink.close()
	// The content type must be set before the job's first line commits
	// the response; a Submit rejection below overrides it via writeError
	// (headers are uncommitted until the first write).
	w.Header().Set("Content-Type", "application/x-ndjson")
	jobID, err := s.sys.Submit(rootcause.JobRequest{AlarmIDs: body.AlarmIDs},
		append(opts, rootcause.WithBatchResults(sink.write), rootcause.WithTransientJob())...)
	if err != nil {
		w.Header().Del("Content-Type")
		submitError(w, err)
		return
	}
	// A dead client (stalled write) makes further extraction work
	// unobservable — cancel the job rather than finish it for no one.
	sink.setOnDead(func() { s.sys.CancelJob(jobID) })
	if _, err := s.sys.Wait(r.Context(), jobID); err != nil {
		if r.Context().Err() != nil {
			s.sys.CancelJob(jobID)
		}
		return
	}
}

// handleJobSubmit admits an extraction job: {"alarm_id":"1"} for a
// single extraction, {"alarm_ids":[...]} for a batch, or
// {"incident_id":"i1"} to extract a correlated incident — all with
// optional "miner" and batches with optional "concurrency". 202 with
// the queued job's status on admit; 429 + Retry-After when the queue is
// full.
func (s *server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var body struct {
		AlarmID     string   `json:"alarm_id"`
		AlarmIDs    []string `json:"alarm_ids"`
		IncidentID  string   `json:"incident_id"`
		Miner       string   `json:"miner"`
		Ranking     string   `json:"ranking"`
		Concurrency int      `json:"concurrency"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad body: %v", err))
		return
	}
	opts, err := extractOptions(body.Miner, body.Ranking)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if body.Concurrency > 0 {
		opts = append(opts, rootcause.WithConcurrency(body.Concurrency))
	}
	jobID, err := s.sys.Submit(rootcause.JobRequest{
		AlarmID:    body.AlarmID,
		AlarmIDs:   body.AlarmIDs,
		IncidentID: body.IncidentID,
	}, opts...)
	if err != nil {
		submitError(w, err)
		return
	}
	st, err := s.sys.Job(jobID)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"job": st})
}

func (s *server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.sys.Jobs()})
}

func (s *server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.sys.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"job": st})
}

func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.sys.CancelJob(id); err != nil {
		status := http.StatusNotFound
		if errors.Is(err, rootcause.ErrJobDone) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	st, err := s.sys.Job(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"job": st})
}

// handleJobResult returns a finished job's outcome: {"job": status,
// "result": ...} for a done single extraction, {"job": status,
// "results": [...]} for a done batch, and just {"job": status} (the
// error is inside) for failed or canceled jobs. An unfinished job is a
// 409 so pollers can distinguish "not yet" from "gone" (404).
func (s *server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	jr, err := s.sys.JobResult(id)
	switch {
	case errors.Is(err, rootcause.ErrJobNotFound):
		writeError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, rootcause.ErrJobNotDone):
		st, serr := s.sys.Job(id)
		if serr != nil {
			writeError(w, http.StatusNotFound, serr)
			return
		}
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": "job not finished", "job": st,
		})
		return
	case err != nil:
		// Failed or canceled: the final status carries the error string.
		st, serr := s.sys.Job(id)
		if serr != nil {
			writeError(w, http.StatusNotFound, serr)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"job": st})
		return
	}
	out := map[string]any{"job": jr.Status}
	switch {
	case jr.Result != nil:
		out["result"] = toExtractResponse(alarmIDOf(jr), jr.Result)
	case jr.Batch != nil:
		lines := make([]batchLine, len(jr.Batch))
		for i, res := range jr.Batch {
			lines[i] = toBatchLine(res)
		}
		out["results"] = lines
	}
	writeJSON(w, http.StatusOK, out)
}

// alarmIDOf recovers the alarm ID of a single-extraction job result.
func alarmIDOf(jr *rootcause.JobResult) string {
	if jr.Result != nil {
		return jr.Result.Alarm.ID
	}
	return ""
}

// handleJobEvents streams a job's status as server-sent events: one
// "progress" event per state or progress change and a final "done"
// event with the terminal status, then the stream closes. A client
// disconnect detaches the subscription immediately.
func (s *server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	ch, cancel, err := s.sys.WatchJob(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	defer cancel()
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	s.sseStreams.Add(1)
	defer s.sseStreams.Add(-1)
	rc := http.NewResponseController(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case st, open := <-ch:
			if !open {
				return
			}
			name := "progress"
			if st.State.Terminal() {
				name = "done"
			}
			raw, err := json.Marshal(st)
			if err != nil {
				return
			}
			// Per-event deadline: a client that stops reading must tear
			// the stream (and its subscription) down, not pin this
			// goroutine behind TCP backpressure forever.
			_ = rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, raw); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

func (s *server) handleVerdict(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Validated bool   `json:"validated"`
		Note      string `json:"note"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad body: %v", err))
		return
	}
	if err := s.sys.SetVerdict(r.PathValue("id"), body.Validated, body.Note); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleFlows(w http.ResponseWriter, r *http.Request) {
	span, err := parseSpan(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	limit := 1000
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
		limit = n
	}
	flows, err := s.sys.Flows(r.Context(), span, r.URL.Query().Get("filter"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	total := len(flows)
	if len(flows) > limit {
		flows = flows[:limit]
	}
	lines := make([]string, len(flows))
	for i := range flows {
		lines[i] = flows[i].String()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":    total,
		"returned": len(lines),
		"flows":    lines,
	})
}
