// Command rcad serves the HTTP JSON backend of the paper's operator GUI:
// listing alarms, running detection and extraction, drilling down to raw
// flows with nfdump-style filters, and recording verdicts. The paper's
// front-end is a GUI over exactly these operations; any HTTP client can
// drive this backend.
//
// Usage:
//
//	rcad -store /tmp/flows -alarmdb /tmp/alarms.json -listen :8642 \
//	     -query-parallelism 8
//
// Endpoints:
//
//	GET  /api/health
//	GET  /api/detectors
//	GET  /api/miners
//	POST /api/detect                body: {"detector":"netreflex","from":UNIX,"to":UNIX}
//	GET  /api/alarms?from=UNIX&to=UNIX
//	GET  /api/alarms/{id}
//	POST /api/alarms/{id}/extract   optional body: {"miner":"fpgrowth"}
//	POST /api/extract-batch         body: {"alarm_ids":["1","2"],"concurrency":4,"miner":"fpgrowth"}
//	POST /api/alarms/{id}/verdict   body: {"validated":true,"note":"..."}
//	GET  /api/flows?from=UNIX&to=UNIX&filter=EXPR&limit=N
//
// Every handler runs under its request's context, so a disconnecting
// client aborts the store scan or extraction it was waiting for.
// /api/extract-batch streams NDJSON: one result object per line, in
// completion order. The server drains in-flight requests on SIGINT or
// SIGTERM via http.Server.Shutdown and always closes the system so the
// flow store flushes and the alarm database persists.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"slices"
	"strconv"
	"syscall"
	"time"

	rootcause "repro"
	"repro/internal/alarmdb"
	"repro/internal/flow"
)

func main() {
	var (
		storeDir = flag.String("store", "", "flow store directory (required)")
		dbPath   = flag.String("alarmdb", "", "alarm database JSON path")
		listen   = flag.String("listen", ":8642", "listen address")
		drain    = flag.Duration("drain", 30*time.Second, "shutdown drain timeout")
		queryPar = flag.Int("query-parallelism", 0,
			"concurrent segment scans per store query (0 = min(GOMAXPROCS, 8), 1 = serial)")
	)
	flag.Usage = func() {
		fmt.Fprint(flag.CommandLine.Output(), `usage: rcad -store DIR [flags]

Serve the HTTP JSON backend of the paper's operator GUI: listing
alarms, running detection and extraction, drilling down to raw flows
with nfdump-style filters, and recording verdicts.

Endpoints:
  GET  /api/health                (includes query_stats scan counters)
  GET  /api/detectors
  GET  /api/miners
  POST /api/detect                {"detector":"netreflex","from":U,"to":U}
  GET  /api/alarms?from=U&to=U
  GET  /api/alarms/{id}
  POST /api/alarms/{id}/extract   optional {"miner":"fpgrowth"}
  POST /api/extract-batch         {"alarm_ids":["1","2"],"concurrency":4,"miner":"fpgrowth"}
  POST /api/alarms/{id}/verdict   {"validated":true,"note":"..."}
  GET  /api/flows?from=U&to=U&filter=EXPR&limit=N

Example:
  rcad -store /tmp/flows -alarmdb /tmp/flows/alarms.json -listen :8642

Flags:
`)
		flag.PrintDefaults()
	}
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "rcad: -store is required")
		flag.Usage()
		os.Exit(2)
	}
	sys, err := rootcause.Open(rootcause.Config{StoreDir: *storeDir, AlarmDBPath: *dbPath},
		rootcause.WithQueryParallelism(*queryPar))
	if err != nil {
		log.Fatal("rcad: ", err)
	}
	if err := run(sys, *listen, *drain); err != nil {
		sys.Close()
		log.Fatal("rcad: ", err)
	}
	if err := sys.Close(); err != nil {
		log.Fatal("rcad: close: ", err)
	}
}

// run serves until SIGINT/SIGTERM, then drains in-flight requests via
// Shutdown. Requests still running when the drain timeout expires have
// their contexts cancelled so store scans and extractions abort cleanly
// instead of being cut mid-write.
func run(sys *rootcause.System, listen string, drain time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// baseCtx outlives the signal: in-flight requests keep working during
	// the drain window and are cancelled only when it runs out.
	baseCtx, baseCancel := context.WithCancel(context.Background())
	defer baseCancel()
	srv := &http.Server{
		Addr:        listen,
		Handler:     (&server{sys: sys}).routes(),
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("rcad: serving on %s", listen)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("rcad: shutting down (drain %s)", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	if err != nil {
		// Drain window expired: cancel the stragglers' contexts and force
		// the remaining connections closed.
		baseCancel()
		srv.Close()
	}
	if serveErr := <-errCh; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	if err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}

// server holds the handler state.
type server struct {
	sys *rootcause.System
}

// routes builds the HTTP mux.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/health", s.handleHealth)
	mux.HandleFunc("GET /api/detectors", s.handleDetectors)
	mux.HandleFunc("GET /api/miners", s.handleMiners)
	mux.HandleFunc("POST /api/detect", s.handleDetect)
	mux.HandleFunc("GET /api/alarms", s.handleAlarms)
	mux.HandleFunc("GET /api/alarms/{id}", s.handleAlarm)
	mux.HandleFunc("POST /api/alarms/{id}/extract", s.handleExtract)
	mux.HandleFunc("POST /api/extract-batch", s.handleExtractBatch)
	mux.HandleFunc("POST /api/alarms/{id}/verdict", s.handleVerdict)
	mux.HandleFunc("GET /api/flows", s.handleFlows)
	return mux
}

// writeJSON writes a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("rcad: encode response: %v", err)
	}
}

// writeError writes a JSON error envelope.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// parseSpan reads from/to query parameters (0 = open end).
func parseSpan(r *http.Request) (flow.Interval, error) {
	parse := func(key string, def uint32) (uint32, error) {
		v := r.URL.Query().Get(key)
		if v == "" {
			return def, nil
		}
		n, err := strconv.ParseUint(v, 10, 32)
		if err != nil {
			return 0, fmt.Errorf("bad %s: %v", key, err)
		}
		return uint32(n), nil
	}
	from, err := parse("from", 0)
	if err != nil {
		return flow.Interval{}, err
	}
	to, err := parse("to", ^uint32(0))
	if err != nil {
		return flow.Interval{}, err
	}
	return flow.Interval{Start: from, End: to}, nil
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	span, ok, err := s.sys.Store().Span()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"store_span":  span.String(),
		"has_data":    ok,
		"query_stats": s.sys.QueryStats(),
	})
}

func (s *server) handleDetectors(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"detectors": rootcause.DetectorNames(),
	})
}

func (s *server) handleMiners(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"miners": rootcause.MinerNames(),
	})
}

// minerOption validates an optional miner name from a request body and
// turns it into a call option. An unknown name is the caller's mistake.
func minerOption(name string) ([]rootcause.Option, error) {
	if name == "" {
		return nil, nil
	}
	if !slices.Contains(rootcause.MinerNames(), name) {
		return nil, fmt.Errorf("unknown miner %q (have %v)", name, rootcause.MinerNames())
	}
	return []rootcause.Option{rootcause.WithMiner(name)}, nil
}

func (s *server) handleDetect(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Detector string `json:"detector"`
		From     uint32 `json:"from"`
		To       uint32 `json:"to"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad body: %v", err))
		return
	}
	span := flow.Interval{Start: body.From, End: body.To}
	if body.To == 0 {
		span.End = ^uint32(0)
	}
	ids, err := s.sys.Detect(r.Context(), body.Detector, span)
	if err != nil {
		// Unknown detector / bad config is the caller's mistake; a failed
		// store scan is ours.
		status := http.StatusInternalServerError
		if errors.Is(err, rootcause.ErrDetectorSetup) {
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"alarm_ids": ids})
}

func (s *server) handleAlarms(w http.ResponseWriter, r *http.Request) {
	span, err := parseSpan(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, s.sys.Alarms(span))
}

func (s *server) handleAlarm(w http.ResponseWriter, r *http.Request) {
	entry, err := s.sys.Alarm(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, entry)
}

// extractResponse is the JSON shape of an extraction result.
type extractResponse struct {
	AlarmID          string        `json:"alarm_id"`
	CandidateFlows   uint64        `json:"candidate_flows"`
	CandidatePackets uint64        `json:"candidate_packets"`
	Prefiltered      bool          `json:"prefiltered"`
	Itemsets         []itemsetJSON `json:"itemsets"`
	Table            string        `json:"table"`
}

// itemsetJSON is one itemset row with its drill-down filter.
type itemsetJSON struct {
	Items         string  `json:"items"`
	FlowSupport   uint64  `json:"flow_support"`
	PacketSupport uint64  `json:"packet_support"`
	Score         float64 `json:"score"`
	Filter        string  `json:"filter"`
}

// toExtractResponse converts a result for the wire.
func toExtractResponse(id string, res *rootcause.Result) extractResponse {
	resp := extractResponse{
		AlarmID:          id,
		CandidateFlows:   res.CandidateFlows,
		CandidatePackets: res.CandidatePackets,
		Prefiltered:      res.Prefiltered,
		Table:            res.Table().String(),
	}
	for i := range res.Itemsets {
		rep := &res.Itemsets[i]
		resp.Itemsets = append(resp.Itemsets, itemsetJSON{
			Items:         rep.Items.String(),
			FlowSupport:   rep.FlowSupport,
			PacketSupport: rep.PacketSupport,
			Score:         rep.Score,
			Filter:        rep.Filter().String(),
		})
	}
	return resp
}

func (s *server) handleExtract(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// The body is optional (legacy clients POST nothing); when present it
	// may select the miner.
	var body struct {
		Miner string `json:"miner"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad body: %v", err))
		return
	}
	opts, err := minerOption(body.Miner)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.sys.Extract(r.Context(), id, opts...)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, alarmdb.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, toExtractResponse(id, res))
}

// batchLine is one NDJSON line of /api/extract-batch.
type batchLine struct {
	AlarmID string           `json:"alarm_id"`
	Error   string           `json:"error,omitempty"`
	Result  *extractResponse `json:"result,omitempty"`
}

func (s *server) handleExtractBatch(w http.ResponseWriter, r *http.Request) {
	var body struct {
		AlarmIDs    []string `json:"alarm_ids"`
		Concurrency int      `json:"concurrency"`
		Miner       string   `json:"miner"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad body: %v", err))
		return
	}
	if len(body.AlarmIDs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("alarm_ids is empty"))
		return
	}
	opts, err := minerOption(body.Miner)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if body.Concurrency > 0 {
		opts = append(opts, rootcause.WithConcurrency(body.Concurrency))
	}
	// The explicit cancel releases the extraction pool if we stop
	// consuming early (e.g. the client disconnected mid-stream and a
	// write failed) — ExtractAll winds down on context cancellation.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for res := range s.sys.ExtractAll(ctx, body.AlarmIDs, opts...) {
		line := batchLine{AlarmID: res.AlarmID}
		if res.Err != nil {
			line.Error = res.Err.Error()
		} else {
			resp := toExtractResponse(res.AlarmID, res.Result)
			line.Result = &resp
		}
		if err := enc.Encode(line); err != nil {
			log.Printf("rcad: encode batch line: %v", err)
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *server) handleVerdict(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Validated bool   `json:"validated"`
		Note      string `json:"note"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad body: %v", err))
		return
	}
	if err := s.sys.SetVerdict(r.PathValue("id"), body.Validated, body.Note); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleFlows(w http.ResponseWriter, r *http.Request) {
	span, err := parseSpan(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	limit := 1000
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
		limit = n
	}
	flows, err := s.sys.Flows(r.Context(), span, r.URL.Query().Get("filter"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	total := len(flows)
	if len(flows) > limit {
		flows = flows[:limit]
	}
	lines := make([]string, len(flows))
	for i := range flows {
		lines[i] = flows[i].String()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":    total,
		"returned": len(lines),
		"flows":    lines,
	})
}
