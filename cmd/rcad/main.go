// Command rcad serves the HTTP JSON backend of the paper's operator GUI:
// listing alarms, running extraction for an alarm, drilling down to raw
// flows with nfdump-style filters, and recording verdicts. The paper's
// front-end is a GUI over exactly these operations; any HTTP client can
// drive this backend.
//
// Usage:
//
//	rcad -store /tmp/flows -alarmdb /tmp/alarms.json -listen :8642
//
// Endpoints:
//
//	GET  /api/health
//	GET  /api/alarms?from=UNIX&to=UNIX
//	GET  /api/alarms/{id}
//	POST /api/alarms/{id}/extract
//	POST /api/alarms/{id}/verdict   body: {"validated":true,"note":"..."}
//	GET  /api/flows?from=UNIX&to=UNIX&filter=EXPR&limit=N
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"

	rootcause "repro"
	"repro/internal/flow"
)

func main() {
	var (
		storeDir = flag.String("store", "", "flow store directory (required)")
		dbPath   = flag.String("alarmdb", "", "alarm database JSON path")
		listen   = flag.String("listen", ":8642", "listen address")
	)
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "rcad: -store is required")
		flag.Usage()
		os.Exit(2)
	}
	sys, err := rootcause.Open(rootcause.Config{StoreDir: *storeDir, AlarmDBPath: *dbPath})
	if err != nil {
		log.Fatal("rcad: ", err)
	}
	defer sys.Close()

	srv := &server{sys: sys}
	log.Printf("rcad: serving %s on %s", *storeDir, *listen)
	if err := http.ListenAndServe(*listen, srv.routes()); err != nil {
		log.Fatal("rcad: ", err)
	}
}

// server holds the handler state.
type server struct {
	sys *rootcause.System
}

// routes builds the HTTP mux.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/health", s.handleHealth)
	mux.HandleFunc("GET /api/alarms", s.handleAlarms)
	mux.HandleFunc("GET /api/alarms/{id}", s.handleAlarm)
	mux.HandleFunc("POST /api/alarms/{id}/extract", s.handleExtract)
	mux.HandleFunc("POST /api/alarms/{id}/verdict", s.handleVerdict)
	mux.HandleFunc("GET /api/flows", s.handleFlows)
	return mux
}

// writeJSON writes a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("rcad: encode response: %v", err)
	}
}

// writeError writes a JSON error envelope.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// parseSpan reads from/to query parameters (0 = open end).
func parseSpan(r *http.Request) (flow.Interval, error) {
	parse := func(key string, def uint32) (uint32, error) {
		v := r.URL.Query().Get(key)
		if v == "" {
			return def, nil
		}
		n, err := strconv.ParseUint(v, 10, 32)
		if err != nil {
			return 0, fmt.Errorf("bad %s: %v", key, err)
		}
		return uint32(n), nil
	}
	from, err := parse("from", 0)
	if err != nil {
		return flow.Interval{}, err
	}
	to, err := parse("to", ^uint32(0))
	if err != nil {
		return flow.Interval{}, err
	}
	return flow.Interval{Start: from, End: to}, nil
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	span, ok, err := s.sys.Store().Span()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"store_span": span.String(),
		"has_data":   ok,
	})
}

func (s *server) handleAlarms(w http.ResponseWriter, r *http.Request) {
	span, err := parseSpan(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, s.sys.Alarms(span))
}

func (s *server) handleAlarm(w http.ResponseWriter, r *http.Request) {
	entry, err := s.sys.Alarm(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, entry)
}

// extractResponse is the JSON shape of an extraction result.
type extractResponse struct {
	AlarmID          string        `json:"alarm_id"`
	CandidateFlows   uint64        `json:"candidate_flows"`
	CandidatePackets uint64        `json:"candidate_packets"`
	Prefiltered      bool          `json:"prefiltered"`
	Itemsets         []itemsetJSON `json:"itemsets"`
	Table            string        `json:"table"`
}

// itemsetJSON is one itemset row with its drill-down filter.
type itemsetJSON struct {
	Items         string  `json:"items"`
	FlowSupport   uint64  `json:"flow_support"`
	PacketSupport uint64  `json:"packet_support"`
	Score         float64 `json:"score"`
	Filter        string  `json:"filter"`
}

func (s *server) handleExtract(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, err := s.sys.Extract(id)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := extractResponse{
		AlarmID:          id,
		CandidateFlows:   res.CandidateFlows,
		CandidatePackets: res.CandidatePackets,
		Prefiltered:      res.Prefiltered,
		Table:            res.Table().String(),
	}
	for i := range res.Itemsets {
		rep := &res.Itemsets[i]
		resp.Itemsets = append(resp.Itemsets, itemsetJSON{
			Items:         rep.Items.String(),
			FlowSupport:   rep.FlowSupport,
			PacketSupport: rep.PacketSupport,
			Score:         rep.Score,
			Filter:        rep.Filter().String(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleVerdict(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Validated bool   `json:"validated"`
		Note      string `json:"note"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad body: %v", err))
		return
	}
	if err := s.sys.SetVerdict(r.PathValue("id"), body.Validated, body.Note); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleFlows(w http.ResponseWriter, r *http.Request) {
	span, err := parseSpan(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	limit := 1000
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
		limit = n
	}
	flows, err := s.sys.Flows(span, r.URL.Query().Get("filter"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	total := len(flows)
	if len(flows) > limit {
		flows = flows[:limit]
	}
	lines := make([]string, len(flows))
	for i := range flows {
		lines[i] = flows[i].String()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":    total,
		"returned": len(lines),
		"flows":    lines,
	})
}
