package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	rootcause "repro"
	"repro/internal/alarmdb"
	"repro/internal/flow"
)

// handleCorrelate runs alarm dedup + temporal correlation over the
// stored alarms of a span and stores the resulting incidents. The body
// is optional; zero fields inherit the incident-layer defaults:
//
//	{"from":UNIX,"to":UNIX,"dedup_window":300,"cluster_gap":600,
//	 "min_confidence":0.5}
//
// Correlation is idempotent — re-posting the same span returns the same
// incident IDs.
func (s *server) handleCorrelate(w http.ResponseWriter, r *http.Request) {
	var body struct {
		From          uint32  `json:"from"`
		To            uint32  `json:"to"`
		DedupWindow   uint32  `json:"dedup_window"`
		ClusterGap    uint32  `json:"cluster_gap"`
		MinConfidence float64 `json:"min_confidence"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad body: %v", err))
		return
	}
	span := flow.Interval{Start: body.From, End: body.To}
	if body.To == 0 {
		span.End = ^uint32(0)
	}
	var opts []rootcause.Option
	if body.DedupWindow > 0 {
		opts = append(opts, rootcause.WithDedupWindow(body.DedupWindow))
	}
	if body.ClusterGap > 0 {
		opts = append(opts, rootcause.WithClusterGap(body.ClusterGap))
	}
	if body.MinConfidence > 0 {
		opts = append(opts, rootcause.WithLeadLagConfidence(body.MinConfidence))
	}
	sum, err := s.sys.Correlate(r.Context(), span, opts...)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

// handleIncidents lists stored incidents overlapping ?from&to (defaults
// to everything), every lifecycle status, in time order.
func (s *server) handleIncidents(w http.ResponseWriter, r *http.Request) {
	span, err := parseSpan(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"incidents": s.sys.Incidents(span),
	})
}

// handleIncident returns one incident with its member alarms. The
// lead-lag chain rides inside the incident record; members are full
// alarm entries so the operator sees each alarm's workflow status.
func (s *server) handleIncident(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	entry, err := s.sys.Incident(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	members, err := s.sys.IncidentAlarms(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"incident": entry,
		"members":  members,
	})
}

// handleIncidentExtract submits the ONE extraction job of an incident
// (its members merged into a single mining run) and answers 202 with
// the queued job, exactly like POST /api/v1/jobs. The optional body
// selects the miner and ranking: {"miner":"fpgrowth","ranking":"lift"}.
func (s *server) handleIncidentExtract(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var body struct {
		Miner   string `json:"miner"`
		Ranking string `json:"ranking"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad body: %v", err))
		return
	}
	opts, err := extractOptions(body.Miner, body.Ranking)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Reject unknown incidents before queueing a job doomed to fail.
	if _, err := s.sys.Incident(id); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, alarmdb.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	jobID, err := s.sys.Submit(rootcause.JobRequest{IncidentID: id}, opts...)
	if err != nil {
		submitError(w, err)
		return
	}
	st, err := s.sys.Job(jobID)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"job": st})
}
