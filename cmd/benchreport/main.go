// Command benchreport regenerates every table and statistic of the
// paper's evaluation, prints paper-vs-measured side by side, and runs
// the scenario-catalog evaluation matrix whose scores are the repo's
// quality trajectory (BENCH_eval.json + markdown report, tracked
// PR-over-PR; see docs/evaluation.md). This is the human-readable
// companion of the bench_test.go benchmark suite; EXPERIMENTS.md records
// a captured run.
//
// Usage:
//
//	benchreport              # all experiments incl. the eval matrix
//	benchreport -exp e1      # only Table 1
//	benchreport -exp eval    # only the scenario x detector x miner matrix
//
// Experiments (see DESIGN.md §6-§7): e1 Table 1 itemsets; e2/e3 the
// GEANT 40-alarm statistics (94% useful, 26-28% additional evidence); e4
// the SWITCH 31-anomaly extraction; e5 flow-vs-packet support on UDP
// floods; e6 the self-tuning ablation; eval the full scenario-catalog
// ground-truth matrix.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/report"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: all|e1|e2|e3|e4|e5|e6|scan|shard|stream|eval")
		seed      = flag.Uint64("seed", 1, "suite seed")
		jsonPath  = flag.String("json", "BENCH_eval.json", "eval: machine-readable report path (\"\" = skip)")
		mdPath    = flag.String("md", "BENCH_eval.md", "eval: markdown report path (\"\" = skip)")
		scenarios = flag.String("scenarios", "", "eval: comma-separated catalog scenarios (default: whole catalog)")
		detectors = flag.String("detectors", "", "eval: comma-separated alarm sources: synthesized and/or registered detectors (default: all)")
		miners    = flag.String("miners", "", "eval: comma-separated miner registry names (default: all)")
		sync      = flag.Bool("sync", false, "eval: extract via the synchronous API instead of the job manager")
		quick     = flag.Bool("quick", false, "eval: reduced matrix for CI smoke runs")
		incidents = flag.Bool("incidents", false,
			"eval: also run the incident-mode column (alarm storm -> dedup + correlation -> one job per incident)")
		segFmt = flag.Int("segment-format", 0,
			"eval: flow-store segment format (1 = fixed rows, 2 = column blocks, 0 = library default); scores are format-independent")
		scanMD   = flag.String("scan-md", "BENCH_scan.md", "scan: markdown report path (\"\" = skip)")
		shardMD  = flag.String("shard-md", "BENCH_shard.md", "shard: markdown report path (\"\" = skip)")
		streamMD = flag.String("stream-md", "BENCH_stream.md", "stream: markdown report path (\"\" = skip)")
		shards   = flag.Int("shards", 0,
			"eval: partition every scenario store into N shards (0/1 = single store); scores are shard-independent")
		httpPeers = flag.Bool("http-peers", false,
			"eval: serve the shards over loopback HTTP and run the matrix through the remote-peer client (needs -shards >= 2)")
	)
	flag.Usage = func() {
		fmt.Fprint(flag.CommandLine.Output(), `usage: benchreport [flags]

Regenerate the tables and statistics of the paper's evaluation and
print paper-vs-measured side by side (the human-readable companion of
the bench_test.go suite). The eval experiment runs the scenario-catalog
ground-truth matrix (docs/scenarios.md) through every configured
detector and miner via the public API and writes BENCH_eval.json plus a
markdown report — the quality trajectory compared PR-over-PR
(docs/evaluation.md).

Experiments (-exp, see DESIGN.md §6-§7):
  e1    Table 1 itemsets for a NetReflex port-scan alarm
  e2    GEANT 40-alarm useful-extraction fraction (paper: 94%)
  e3    GEANT 40-alarm additional-evidence fraction (paper: 26-28%)
  e4    SWITCH 31-anomaly extraction (paper: all 31)
  e5    flow-only vs dual support across UDP flood sizes
  e6    self-tuning vs fixed minimum support
  scan  segment-format scan throughput, v1 fixed rows vs v2 column blocks
  shard scatter-gather throughput at 1/2/4/8 shards + HTTP-peer overhead
  stream live-pipeline ingest throughput + seal-to-incident latency
  eval  scenario catalog x detectors x miners, scored against ground truth

Flags:
`)
		flag.PrintDefaults()
	}
	flag.Parse()
	cfg := evalFlags{
		jsonPath: *jsonPath, mdPath: *mdPath,
		scenarios: splitCSV(*scenarios), detectors: splitCSV(*detectors),
		miners: splitCSV(*miners), sync: *sync, quick: *quick,
		incidents: *incidents, segmentFormat: uint16(*segFmt),
		scanMD: *scanMD, shardMD: *shardMD, streamMD: *streamMD,
		shards: *shards, httpPeers: *httpPeers,
	}
	if err := run(*exp, *seed, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

// evalFlags carries the eval-matrix flag set.
type evalFlags struct {
	jsonPath, mdPath             string
	scenarios, detectors, miners []string
	sync, quick, incidents       bool
	segmentFormat                uint16
	scanMD, shardMD, streamMD    string
	shards                       int
	httpPeers                    bool
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func run(exp string, seed uint64, cfg evalFlags) error {
	workDir, cleanup, err := eval.TempWorkDir()
	if err != nil {
		return err
	}
	defer cleanup()

	all := exp == "all"
	if all || exp == "e1" {
		if err := runE1(workDir); err != nil {
			return err
		}
	}
	if all || exp == "e2" || exp == "e3" {
		if err := runE2E3(workDir, seed); err != nil {
			return err
		}
	}
	if all || exp == "e4" {
		if err := runE4(workDir, seed); err != nil {
			return err
		}
	}
	if all || exp == "e5" {
		if err := runE5(workDir, seed); err != nil {
			return err
		}
	}
	if all || exp == "e6" {
		if err := runE6(workDir, seed); err != nil {
			return err
		}
	}
	if all || exp == "scan" {
		if err := runScan(workDir, seed, cfg); err != nil {
			return err
		}
	}
	if all || exp == "shard" {
		if err := runShard(workDir, seed, cfg); err != nil {
			return err
		}
	}
	if all || exp == "stream" {
		if err := runStream(workDir, seed, cfg); err != nil {
			return err
		}
	}
	if all || exp == "eval" {
		if err := runEval(workDir, seed, cfg); err != nil {
			return err
		}
	}
	return nil
}

func header(id, title string) {
	fmt.Printf("\n===== %s: %s =====\n", id, title)
}

func runE1(workDir string) error {
	header("E1", "Table 1 — itemsets for a NetReflex port-scan alarm")
	t0 := time.Now()
	res, err := eval.RunTable1(workDir+"/table1", eval.DefaultTable1())
	if err != nil {
		return err
	}
	fmt.Print(res.Table().String())
	fmt.Printf("\npaper Table 1 (anonymized): rows 312.59K / 270.74K flows for the two\n" +
		"scanners, 37.19K / 37.28K flows for the two port-80 DDoS itemsets.\n")
	fmt.Printf("elapsed: %v\n", time.Since(t0).Round(time.Millisecond))
	return nil
}

func runE2E3(workDir string, seed uint64) error {
	header("E2+E3", "GEANT 40-alarm evaluation (1/100 sampled)")
	t0 := time.Now()
	suite, err := eval.RunSuite("geant-40", eval.GEANTSpecs(seed), eval.SuiteConfig{
		SeedBase: seed * 1000, SampleRate: 100, WorkDir: workDir + "/geant",
	})
	if err != nil {
		return err
	}
	t := report.New("", "metric", "paper", "measured")
	t.AddRow("alarms analyzed", "40", fmt.Sprintf("%d", len(suite.Evals)))
	t.AddRow("useful itemsets", "94%", fmt.Sprintf("%.1f%% (%d/%d)",
		100*suite.UsefulFraction(), suite.Useful(), len(suite.Evals)))
	t.AddRow("no meaningful flows", "6%", fmt.Sprintf("%.1f%%", 100*(1-suite.UsefulFraction())))
	t.AddRow("additional flows found", "26-28%", fmt.Sprintf("%.1f%% (%d/%d useful)",
		100*suite.AdditionalFraction(), suite.Additional(), suite.Useful()))
	fmt.Print(t.String())
	fmt.Printf("elapsed: %v\n", time.Since(t0).Round(time.Millisecond))
	return nil
}

func runE4(workDir string, seed uint64) error {
	header("E4", "SWITCH 31-anomaly evaluation (unsampled, histogram/KL detector)")
	t0 := time.Now()
	suite, err := eval.RunSuite("switch-31", eval.SWITCHSpecs(seed+1), eval.SuiteConfig{
		SeedBase: seed*2000 + 1, SampleRate: 1, WorkDir: workDir + "/switch",
		UseDetector: true, Detector: "histogram",
	})
	if err != nil {
		return err
	}
	fromDetector := 0
	for _, e := range suite.Evals {
		if e.AlarmSource == "detector" {
			fromDetector++
		}
	}
	t := report.New("", "metric", "paper", "measured")
	t.AddRow("anomalies analyzed", "31", fmt.Sprintf("%d", len(suite.Evals)))
	t.AddRow("extracted successfully", "31 (all)", fmt.Sprintf("%d (%.1f%%)",
		suite.Useful(), 100*suite.UsefulFraction()))
	t.AddRow("alarms from detector", "all", fmt.Sprintf("%d/%d (rest synthesized)",
		fromDetector, len(suite.Evals)))
	fmt.Print(t.String())
	fmt.Printf("elapsed: %v\n", time.Since(t0).Round(time.Millisecond))
	return nil
}

func runE5(workDir string, seed uint64) error {
	header("E5", "flow- vs packet-support on point-to-point UDP floods")
	t0 := time.Now()
	rows, err := eval.RunUDPFloodSweep(workDir+"/sweep", nil, 1_000_000, seed*3000)
	if err != nil {
		return err
	}
	t := report.New("", "flood flows", "packets/flow", "flow-only Apriori", "extended Apriori")
	found := func(b bool) string {
		if b {
			return "extracted"
		}
		return "MISSED"
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.FloodFlows), fmt.Sprintf("%d", r.PacketsPerFlow),
			found(r.FlowOnlyFound), found(r.DualFound))
	}
	fmt.Print(t.String())
	fmt.Println("paper: \"if an anomaly is not characterized by a significant volume of")
	fmt.Println("flows, Apriori cannot extract it ... for this reason we extended Apriori")
	fmt.Println("to also compute the support of an itemset in terms of packets\".")
	fmt.Printf("elapsed: %v\n", time.Since(t0).Round(time.Millisecond))
	return nil
}

func runE6(workDir string, seed uint64) error {
	header("E6", "self-tuning minimum support ablation")
	t0 := time.Now()
	rows, err := eval.RunTuningAblation(workDir+"/tuning", nil, seed*4000)
	if err != nil {
		return err
	}
	t := report.New("", "intensity", "scan flows", "fixed support", "self-tuned", "tuning rounds")
	found := func(b bool) string {
		if b {
			return "extracted"
		}
		return "MISSED"
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.2f", r.Intensity), fmt.Sprintf("%d", r.ScanFlows),
			found(r.FixedUseful), found(r.SelfTunedUseful), fmt.Sprintf("%d", r.SelfTunedRounds))
	}
	fmt.Print(t.String())
	fmt.Println("paper: the extended Apriori \"automatically self-adjust[s] some of its")
	fmt.Println("configuration parameters to properly select meaningful itemsets\".")
	fmt.Printf("elapsed: %v\n", time.Since(t0).Round(time.Millisecond))
	return nil
}

func runScan(workDir string, seed uint64, cfg evalFlags) error {
	header("SCAN", "segment-format scan throughput — v1 fixed rows vs v2 column blocks")
	t0 := time.Now()
	rows, err := eval.RunScanBench(workDir+"/scan", eval.ScanBenchConfig{Seed: int64(seed)})
	if err != nil {
		return err
	}
	t := report.New("", "op", "workload", "format", "matched", "Mrec/s", "speedup vs v1")
	for _, r := range rows {
		t.AddRow(r.Op, r.Workload, fmt.Sprintf("v%d", r.Format),
			fmt.Sprintf("%d", r.Matched), fmt.Sprintf("%.1f", r.MrecPerS),
			fmt.Sprintf("%.2fx", r.SpeedupV1))
	}
	fmt.Print(t.String())
	fmt.Printf("filter: %q — the selective two-column extraction scan. The clustered\n"+
		"workload is the paper's shape (one anomaly burst); uniform is v2's worst\n"+
		"case, where no background block can be skipped.\n", eval.ScanFilter)
	if cfg.scanMD != "" {
		var b strings.Builder
		b.WriteString("# BENCH_scan — segment-format scan throughput\n\n")
		fmt.Fprintf(&b, "Filter `%s` over 200k records in 4 bins; v1 = fixed 42-byte rows,\n"+
			"v2 = compressed column blocks with zone maps and vectorized filters.\n\n", eval.ScanFilter)
		b.WriteString("| op | workload | format | matched | Mrec/s | speedup vs v1 |\n")
		b.WriteString("|---|---|---|---|---|---|\n")
		for _, r := range rows {
			fmt.Fprintf(&b, "| %s | %s | v%d | %d | %.1f | %.2fx |\n",
				r.Op, r.Workload, r.Format, r.Matched, r.MrecPerS, r.SpeedupV1)
		}
		if err := os.WriteFile(cfg.scanMD, []byte(b.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.scanMD)
	}
	fmt.Printf("elapsed: %v\n", time.Since(t0).Round(time.Millisecond))
	return nil
}

func runShard(workDir string, seed uint64, cfg evalFlags) error {
	header("SHARD", "scatter-gather scan throughput — 1/2/4/8 hash-partitioned shards")
	t0 := time.Now()
	rows, err := eval.RunShardBench(workDir+"/shard", eval.ScanBenchConfig{Seed: int64(seed)})
	if err != nil {
		return err
	}
	fmtCluster := func(v float64, suffix string) string {
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%s", v, suffix)
	}
	fmtClusterX := func(v float64) string {
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2fx", v)
	}
	t := report.New("", "op", "workload", "mode", "shards", "matched",
		"Mrec/s", "speedup", "cluster Mrec/s", "cluster speedup")
	for _, r := range rows {
		t.AddRow(r.Op, r.Workload, r.Mode, fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%d", r.Matched), fmt.Sprintf("%.1f", r.MrecPerS),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmtCluster(r.ClusterMrecPerS, ""), fmtClusterX(r.ClusterSpeedup))
	}
	fmt.Print(t.String())
	fmt.Printf("filter: %q over the scan-bench workloads, hash-partitioned by router.\n"+
		"\"Mrec/s\" is measured end-to-end on this host (GOMAXPROCS %d); \"cluster\"\n"+
		"charges each pass the slowest shard's standalone scan — the wall-clock an\n"+
		"N-node cluster sees. http rows read the 4 shards through loopback HTTP\n"+
		"peers (framed record streams), measuring the remote-client overhead.\n",
		eval.ScanFilter, runtime.GOMAXPROCS(0))
	if cfg.shardMD != "" {
		var b strings.Builder
		b.WriteString("# BENCH_shard — scatter-gather scan throughput\n\n")
		fmt.Fprintf(&b, "Filter `%s` over the scan-bench workloads (200k records, 4 bins,\n"+
			"v2 segments), hash-partitioned by router into 1/2/4/8 shards. `Mrec/s` is\n"+
			"measured end-to-end on this host (GOMAXPROCS %d, so in-process fan-out\n"+
			"cannot exceed the core count); `cluster Mrec/s` charges each pass the\n"+
			"slowest shard's standalone scan time — the wall-clock an N-node cluster\n"+
			"sees when every node scans its own shard concurrently. `http` rows read\n"+
			"the 4-shard store through loopback HTTP peers (framed 42-byte record\n"+
			"streams for query, JSON merges for count), measuring remote-client\n"+
			"overhead against the in-process 4-shard rows. Matched-flow counts are\n"+
			"asserted identical across all modes before any row is reported.\n\n",
			eval.ScanFilter, runtime.GOMAXPROCS(0))
		b.WriteString("| op | workload | mode | shards | matched | Mrec/s | speedup | cluster Mrec/s | cluster speedup |\n")
		b.WriteString("|---|---|---|---|---|---|---|---|---|\n")
		for _, r := range rows {
			fmt.Fprintf(&b, "| %s | %s | %s | %d | %d | %.1f | %.2fx | %s | %s |\n",
				r.Op, r.Workload, r.Mode, r.Shards, r.Matched, r.MrecPerS,
				r.Speedup, fmtCluster(r.ClusterMrecPerS, ""), fmtClusterX(r.ClusterSpeedup))
		}
		if err := os.WriteFile(cfg.shardMD, []byte(b.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.shardMD)
	}
	fmt.Printf("elapsed: %v\n", time.Since(t0).Round(time.Millisecond))
	return nil
}

func runStream(workDir string, seed uint64, cfg evalFlags) error {
	header("STREAM", "live-pipeline ingest throughput and seal-to-incident latency")
	t0 := time.Now()
	rows, err := eval.RunStreamBench(workDir+"/stream", eval.StreamBenchConfig{Seed: seed * 42})
	if err != nil {
		return err
	}
	fmtRank := func(r eval.StreamBenchRow) string {
		if r.Mode != "auto-extract" {
			return "-"
		}
		return fmt.Sprintf("%d", r.TruthRank)
	}
	t := report.New("", "mode", "records", "rec/s", "drain ms", "sealed bins",
		"incidents", "extracted", "seal->incident ms (mean/max)", "seal->extracted ms", "truth rank")
	for _, r := range rows {
		t.AddRow(r.Mode, fmt.Sprintf("%d", r.Records), fmt.Sprintf("%.0f", r.RecsPerS),
			fmt.Sprintf("%.0f", r.DrainMS), fmt.Sprintf("%d", r.SealedBins),
			fmt.Sprintf("%d", r.Incidents), fmt.Sprintf("%d", r.Extracted),
			fmt.Sprintf("%.1f / %.1f", r.MeanIncidentMS, r.MaxIncidentMS),
			fmt.Sprintf("%.1f", r.MeanExtractMS), fmtRank(r))
	}
	fmt.Print(t.String())
	fmt.Println("ddos-syn replayed flat out through the live ingest path. Latency runs")
	fmt.Println("from the stream clock passing a bin's end (the moment it may seal) to")
	fmt.Println("the watcher publishing the incident / finished extraction.")
	if cfg.streamMD != "" {
		var b strings.Builder
		b.WriteString("# BENCH_stream — live-pipeline throughput and latency\n\n")
		b.WriteString("The ddos-syn catalog scenario replayed flat out through the live ingest\n" +
			"path (`rcad -live`'s machinery: bounded ingest buffer, online CUSUM +\n" +
			"heavy-hitter detectors, self-sealing bins, incident watcher). Latency is\n" +
			"measured from the stream clock passing a bin's end — the moment the\n" +
			"pipeline may seal it — to the watcher publishing the incident (correlation\n" +
			"+ job submission) or the finished extraction. `detect-only` disables\n" +
			"auto-extraction; `auto-extract` is the full packets-to-root-cause loop,\n" +
			"and its truth rank asserts the extracted itemset names the injected flood\n" +
			"(1 = top-ranked).\n\n")
		b.WriteString("| mode | records | rec/s | drain ms | sealed bins | incidents | extracted | seal→incident ms (mean/max) | seal→extracted ms | truth rank |\n")
		b.WriteString("|---|---|---|---|---|---|---|---|---|---|\n")
		for _, r := range rows {
			fmt.Fprintf(&b, "| %s | %d | %.0f | %.0f | %d | %d | %d | %.1f / %.1f | %.1f | %s |\n",
				r.Mode, r.Records, r.RecsPerS, r.DrainMS, r.SealedBins,
				r.Incidents, r.Extracted, r.MeanIncidentMS, r.MaxIncidentMS,
				r.MeanExtractMS, fmtRank(r))
		}
		if err := os.WriteFile(cfg.streamMD, []byte(b.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.streamMD)
	}
	fmt.Printf("elapsed: %v\n", time.Since(t0).Round(time.Millisecond))
	return nil
}

// quickScenarios is the reduced -quick matrix: one representative of each
// major class, an expect-fail case and the two replayed-trace scenarios
// (exercising the trace reader end to end), sized for CI smoke runs.
var quickScenarios = []string{
	"portscan", "dns-amplification", "icmp-flood", "link-outage", "stealthy",
	"trace-ddos", "trace-portscan",
}

func runEval(workDir string, seed uint64, cfg evalFlags) error {
	header("EVAL", "scenario catalog x detectors x miners, scored against ground truth")
	pipeCfg := eval.PipelineConfig{
		Scenarios:     cfg.scenarios,
		Detectors:     cfg.detectors,
		Miners:        cfg.miners,
		Seed:          seed,
		WorkDir:       workDir + "/matrix",
		UseJobs:       !cfg.sync,
		Incidents:     cfg.incidents,
		SegmentFormat: cfg.segmentFormat,
		Shards:        cfg.shards,
		HTTPPeers:     cfg.httpPeers,
	}
	if cfg.quick {
		if pipeCfg.Scenarios == nil {
			pipeCfg.Scenarios = quickScenarios
		}
		if pipeCfg.Detectors == nil {
			pipeCfg.Detectors = []string{eval.SynthesizedSource}
		}
	}
	t0 := time.Now()
	rep, err := eval.RunMatrix(pipeCfg)
	if err != nil {
		return err
	}

	fmt.Printf("catalog: %s\n", strings.Join(gen.Names(), ", "))
	t := report.New("", "miner", "cells", "pass", "precision", "recall", "MRR", "peak itemsets")
	for _, m := range rep.PerMiner {
		t.AddRow(m.Miner, fmt.Sprintf("%d", m.Combos), fmt.Sprintf("%d", m.Pass),
			fmt.Sprintf("%.3f", m.MeanPrecision), fmt.Sprintf("%.3f", m.MeanRecall),
			fmt.Sprintf("%.3f", m.MeanReciprocalRank), fmt.Sprintf("%d", m.PeakItemsets))
	}
	t.AddRow("TOTAL", fmt.Sprintf("%d", rep.Totals.Combos), fmt.Sprintf("%d", rep.Totals.Pass),
		fmt.Sprintf("%.3f", rep.Totals.MeanPrecision), fmt.Sprintf("%.3f", rep.Totals.MeanRecall),
		fmt.Sprintf("%.3f", rep.Totals.MeanReciprocalRank), fmt.Sprintf("%d", rep.Totals.PeakItemsets))
	fmt.Print(t.String())
	for _, c := range rep.Combos {
		if c.Error != "" {
			fmt.Printf("ERROR %s/%s/%s: %s\n", c.Scenario, c.Detector, c.Miner, c.Error)
		} else if !c.Pass {
			fmt.Printf("FAIL  %s/%s/%s: useful=%v rank=%d\n",
				c.Scenario, c.Detector, c.Miner, c.Useful, c.RankOfTrueCause)
		}
	}

	if len(rep.Incidents) > 0 {
		fmt.Println("\nincident mode (storm -> dedup + correlation -> one job per incident):")
		it := report.New("", "scenario", "alarms", "incidents", "reduction", "jobs", "recall", "worst rank", "chain", "pass")
		for _, s := range rep.Incidents {
			chain := "-"
			if s.Composite {
				chain = fmt.Sprintf("%v", s.ChainOK)
			}
			it.AddRow(s.Scenario, fmt.Sprintf("%d", s.AlarmsIn), fmt.Sprintf("%d", s.Incidents),
				fmt.Sprintf("%.1fx", s.Reduction), fmt.Sprintf("%d", s.Jobs),
				fmt.Sprintf("%.2f", s.Recall), fmt.Sprintf("%d", s.WorstRank),
				chain, fmt.Sprintf("%v", s.Pass))
		}
		fmt.Print(it.String())
		for _, s := range rep.Incidents {
			if s.Error != "" {
				fmt.Printf("ERROR %s (incident mode): %s\n", s.Scenario, s.Error)
			}
		}
	}

	if cfg.jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.jsonPath)
	}
	if cfg.mdPath != "" {
		if err := os.WriteFile(cfg.mdPath, []byte(rep.Markdown()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.mdPath)
	}
	fmt.Printf("elapsed: %v\n", time.Since(t0).Round(time.Millisecond))
	return nil
}
