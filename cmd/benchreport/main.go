// Command benchreport regenerates every table and statistic of the
// paper's evaluation and prints paper-vs-measured side by side. This is
// the human-readable companion of the bench_test.go benchmark suite;
// EXPERIMENTS.md records a captured run.
//
// Usage:
//
//	benchreport            # all experiments
//	benchreport -exp e1    # only Table 1
//
// Experiments (see DESIGN.md §5): e1 Table 1 itemsets; e2/e3 the GEANT
// 40-alarm statistics (94% useful, 26-28% additional evidence); e4 the
// SWITCH 31-anomaly extraction; e5 flow-vs-packet support on UDP floods;
// e6 the self-tuning ablation.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/eval"
	"repro/internal/report"
)

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment: all|e1|e2|e3|e4|e5|e6")
		seed = flag.Uint64("seed", 1, "suite seed")
	)
	flag.Usage = func() {
		fmt.Fprint(flag.CommandLine.Output(), `usage: benchreport [flags]

Regenerate the tables and statistics of the paper's evaluation and
print paper-vs-measured side by side (the human-readable companion of
the bench_test.go suite).

Experiments (-exp, see DESIGN.md §5):
  e1  Table 1 itemsets for a NetReflex port-scan alarm
  e2  GEANT 40-alarm useful-extraction fraction (paper: 94%)
  e3  GEANT 40-alarm additional-evidence fraction (paper: 26-28%)
  e4  SWITCH 31-anomaly extraction (paper: all 31)
  e5  flow-only vs dual support across UDP flood sizes
  e6  self-tuning vs fixed minimum support

Flags:
`)
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := run(*exp, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func run(exp string, seed uint64) error {
	workDir, cleanup, err := eval.TempWorkDir()
	if err != nil {
		return err
	}
	defer cleanup()

	all := exp == "all"
	if all || exp == "e1" {
		if err := runE1(workDir); err != nil {
			return err
		}
	}
	if all || exp == "e2" || exp == "e3" {
		if err := runE2E3(workDir, seed); err != nil {
			return err
		}
	}
	if all || exp == "e4" {
		if err := runE4(workDir, seed); err != nil {
			return err
		}
	}
	if all || exp == "e5" {
		if err := runE5(workDir, seed); err != nil {
			return err
		}
	}
	if all || exp == "e6" {
		if err := runE6(workDir, seed); err != nil {
			return err
		}
	}
	return nil
}

func header(id, title string) {
	fmt.Printf("\n===== %s: %s =====\n", id, title)
}

func runE1(workDir string) error {
	header("E1", "Table 1 — itemsets for a NetReflex port-scan alarm")
	t0 := time.Now()
	res, err := eval.RunTable1(workDir+"/table1", eval.DefaultTable1())
	if err != nil {
		return err
	}
	fmt.Print(res.Table().String())
	fmt.Printf("\npaper Table 1 (anonymized): rows 312.59K / 270.74K flows for the two\n" +
		"scanners, 37.19K / 37.28K flows for the two port-80 DDoS itemsets.\n")
	fmt.Printf("elapsed: %v\n", time.Since(t0).Round(time.Millisecond))
	return nil
}

func runE2E3(workDir string, seed uint64) error {
	header("E2+E3", "GEANT 40-alarm evaluation (1/100 sampled)")
	t0 := time.Now()
	suite, err := eval.RunSuite("geant-40", eval.GEANTSpecs(seed), eval.SuiteConfig{
		SeedBase: seed * 1000, SampleRate: 100, WorkDir: workDir + "/geant",
	})
	if err != nil {
		return err
	}
	t := report.New("", "metric", "paper", "measured")
	t.AddRow("alarms analyzed", "40", fmt.Sprintf("%d", len(suite.Evals)))
	t.AddRow("useful itemsets", "94%", fmt.Sprintf("%.1f%% (%d/%d)",
		100*suite.UsefulFraction(), suite.Useful(), len(suite.Evals)))
	t.AddRow("no meaningful flows", "6%", fmt.Sprintf("%.1f%%", 100*(1-suite.UsefulFraction())))
	t.AddRow("additional flows found", "26-28%", fmt.Sprintf("%.1f%% (%d/%d useful)",
		100*suite.AdditionalFraction(), suite.Additional(), suite.Useful()))
	fmt.Print(t.String())
	fmt.Printf("elapsed: %v\n", time.Since(t0).Round(time.Millisecond))
	return nil
}

func runE4(workDir string, seed uint64) error {
	header("E4", "SWITCH 31-anomaly evaluation (unsampled, histogram/KL detector)")
	t0 := time.Now()
	suite, err := eval.RunSuite("switch-31", eval.SWITCHSpecs(seed+1), eval.SuiteConfig{
		SeedBase: seed*2000 + 1, SampleRate: 1, WorkDir: workDir + "/switch",
		UseDetector: true, Detector: "histogram",
	})
	if err != nil {
		return err
	}
	fromDetector := 0
	for _, e := range suite.Evals {
		if e.AlarmSource == "detector" {
			fromDetector++
		}
	}
	t := report.New("", "metric", "paper", "measured")
	t.AddRow("anomalies analyzed", "31", fmt.Sprintf("%d", len(suite.Evals)))
	t.AddRow("extracted successfully", "31 (all)", fmt.Sprintf("%d (%.1f%%)",
		suite.Useful(), 100*suite.UsefulFraction()))
	t.AddRow("alarms from detector", "all", fmt.Sprintf("%d/%d (rest synthesized)",
		fromDetector, len(suite.Evals)))
	fmt.Print(t.String())
	fmt.Printf("elapsed: %v\n", time.Since(t0).Round(time.Millisecond))
	return nil
}

func runE5(workDir string, seed uint64) error {
	header("E5", "flow- vs packet-support on point-to-point UDP floods")
	t0 := time.Now()
	rows, err := eval.RunUDPFloodSweep(workDir+"/sweep", nil, 1_000_000, seed*3000)
	if err != nil {
		return err
	}
	t := report.New("", "flood flows", "packets/flow", "flow-only Apriori", "extended Apriori")
	found := func(b bool) string {
		if b {
			return "extracted"
		}
		return "MISSED"
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.FloodFlows), fmt.Sprintf("%d", r.PacketsPerFlow),
			found(r.FlowOnlyFound), found(r.DualFound))
	}
	fmt.Print(t.String())
	fmt.Println("paper: \"if an anomaly is not characterized by a significant volume of")
	fmt.Println("flows, Apriori cannot extract it ... for this reason we extended Apriori")
	fmt.Println("to also compute the support of an itemset in terms of packets\".")
	fmt.Printf("elapsed: %v\n", time.Since(t0).Round(time.Millisecond))
	return nil
}

func runE6(workDir string, seed uint64) error {
	header("E6", "self-tuning minimum support ablation")
	t0 := time.Now()
	rows, err := eval.RunTuningAblation(workDir+"/tuning", nil, seed*4000)
	if err != nil {
		return err
	}
	t := report.New("", "intensity", "scan flows", "fixed support", "self-tuned", "tuning rounds")
	found := func(b bool) string {
		if b {
			return "extracted"
		}
		return "MISSED"
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.2f", r.Intensity), fmt.Sprintf("%d", r.ScanFlows),
			found(r.FixedUseful), found(r.SelfTunedUseful), fmt.Sprintf("%d", r.SelfTunedRounds))
	}
	fmt.Print(t.String())
	fmt.Println("paper: the extended Apriori \"automatically self-adjust[s] some of its")
	fmt.Println("configuration parameters to properly select meaningful itemsets\".")
	fmt.Printf("elapsed: %v\n", time.Since(t0).Round(time.Millisecond))
	return nil
}
