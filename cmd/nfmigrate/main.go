// Command nfmigrate rewrites a flow store's segments between on-disk
// formats: v1 fixed rows and v2 compressed column blocks. Both formats
// read transparently in a mixed store, so migration is never required —
// it converts archives in place to pick up v2's scan speed (or back to v1
// for tooling that parses the fixed rows directly).
//
// Each segment is rewritten atomically (temp file + rename) with a fresh
// zone-map sidecar; an interrupted run leaves a valid mixed-format store
// and a rerun picks up where it stopped. Rewrites fan out over a bounded
// worker pool (-j). The store meta's default write format is updated
// last, so segments created after the migration match. A sharded store
// (shardstore manifest) migrates shard by shard with the same pool.
//
// Usage:
//
//	nfmigrate -store /tmp/flows            # migrate to v2 (the default)
//	nfmigrate -store /tmp/flows -to 1      # back to fixed rows
//	nfmigrate -store /tmp/flows -j 8       # 8 concurrent segment rewrites
//	nfmigrate -store /tmp/flows -dry-run   # just count formats
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"

	"repro/internal/nfstore"
	"repro/internal/shardstore"
)

func main() {
	var (
		storeDir = flag.String("store", "", "flow store directory (required; single or sharded)")
		target   = flag.Int("to", int(nfstore.FormatV2), "target segment format: 1 = fixed rows, 2 = column blocks")
		workers  = flag.Int("j", 0, "concurrent segment rewrites (0 = min(GOMAXPROCS, 8), 1 = serial)")
		dryRun   = flag.Bool("dry-run", false, "report per-format segment counts without rewriting anything")
	)
	flag.Usage = func() {
		fmt.Fprint(flag.CommandLine.Output(), `usage: nfmigrate -store DIR [-to N] [-j N] [-dry-run]

Rewrite a flow store's segments between the fixed-row (v1) and columnar
(v2) on-disk formats. Migration is optional — queries read both formats,
mixed stores included — and atomic per segment, so an interrupted run
leaves a valid store and a rerun resumes. Segment rewrites run -j at a
time. A sharded store directory (shards.json manifest) migrates every
shard.

Flags:
`)
		flag.PrintDefaults()
	}
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "nfmigrate: -store is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*storeDir, uint16(*target), *workers, *dryRun); err != nil {
		fmt.Fprintln(os.Stderr, "nfmigrate:", err)
		os.Exit(1)
	}
}

func run(dir string, target uint16, workers int, dryRun bool) error {
	// A sharded store is N child stores: migrate each with the same
	// worker pool. The shard label keeps the per-store reports readable.
	if shardstore.IsShardedDir(dir) {
		shardDirs, err := shardstore.ShardDirs(dir)
		if err != nil {
			return err
		}
		for i, sub := range shardDirs {
			fmt.Printf("shard %d (%s)\n", i, filepath.Base(sub))
			if err := runOne(sub, target, workers, dryRun); err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
		}
		return nil
	}
	return runOne(dir, target, workers, dryRun)
}

func runOne(dir string, target uint16, workers int, dryRun bool) error {
	store, err := nfstore.Open(dir)
	if err != nil {
		return err
	}
	defer store.Close()

	printFormats := func(label string) error {
		counts, err := store.SegmentFormats()
		if err != nil {
			return err
		}
		versions := make([]int, 0, len(counts))
		for v := range counts {
			versions = append(versions, int(v))
		}
		sort.Ints(versions)
		fmt.Printf("%s:", label)
		if len(versions) == 0 {
			fmt.Print(" no segments")
		}
		for _, v := range versions {
			fmt.Printf(" v%d=%d", v, counts[uint16(v)])
		}
		fmt.Println()
		return nil
	}
	if err := printFormats("segments"); err != nil {
		return err
	}
	if dryRun {
		return nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	migrated, err := store.MigrateWorkers(ctx, target, workers)
	if err != nil {
		return fmt.Errorf("after %d segment(s): %w", migrated, err)
	}
	fmt.Printf("rewrote %d segment(s) to v%d\n", migrated, target)
	if err := updateMetaFormat(dir, target); err != nil {
		return err
	}
	return printFormats("now")
}

// updateMetaFormat persists the target as the store's default write
// format, so segments created after the migration match the migrated
// ones.
func updateMetaFormat(dir string, target uint16) error {
	path := filepath.Join(dir, "store.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("meta: %w", err)
	}
	var meta map[string]any
	if err := json.Unmarshal(raw, &meta); err != nil {
		return fmt.Errorf("meta: %w", err)
	}
	meta["segment_format"] = target
	out, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("meta: %w", err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return fmt.Errorf("meta: %w", err)
	}
	return nil
}
