package main

import (
	"path/filepath"
	"testing"

	rootcause "repro"
	"repro/internal/alarmdb"
	"repro/internal/flow"
	"repro/internal/gen"
)

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "flows")
	dbPath := filepath.Join(dir, "alarms.json")

	// Prepare a store with a scan.
	sys, err := rootcause.Create(rootcause.Config{StoreDir: storeDir})
	if err != nil {
		t.Fatal(err)
	}
	scenario := gen.Scenario{
		Background: gen.Background{NumPoPs: 3, FlowsPerBin: 250},
		Bins:       30, StartTime: 1_300_000_200, Seed: 42,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: flow.MustParseIP("10.191.64.165"),
				Victim: flow.MustParseIP("198.19.137.129"), SrcPort: 55548,
				Ports: 1500, FlowsPerPort: 2, Router: 1}, Bin: 20},
		},
	}
	if _, err := scenario.Generate(sys.Store()); err != nil {
		t.Fatal(err)
	}
	sys.Close()

	// Full-span detection with the default detector.
	if err := run(storeDir, "netreflex", "fpgrowth", dbPath, 0, 0, false); err != nil {
		t.Fatal(err)
	}

	// The alarm DB must now contain at least one alarm.
	db, err := alarmdb.Open(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() == 0 {
		t.Fatal("no alarms persisted")
	}
}

// TestRunCorrelate: -correlate follows detection with dedup +
// correlation and persists the incidents alongside the alarms.
func TestRunCorrelate(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "flows")
	dbPath := filepath.Join(dir, "alarms.json")

	sys, err := rootcause.Create(rootcause.Config{StoreDir: storeDir})
	if err != nil {
		t.Fatal(err)
	}
	scenario := gen.Scenario{
		Background: gen.Background{NumPoPs: 3, FlowsPerBin: 250},
		Bins:       30, StartTime: 1_300_000_200, Seed: 42,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: flow.MustParseIP("10.191.64.165"),
				Victim: flow.MustParseIP("198.19.137.129"), SrcPort: 55548,
				Ports: 1500, FlowsPerPort: 2, Router: 1}, Bin: 20},
		},
	}
	if _, err := scenario.Generate(sys.Store()); err != nil {
		t.Fatal(err)
	}
	sys.Close()

	if err := run(storeDir, "netreflex", "", dbPath, 0, 0, true); err != nil {
		t.Fatal(err)
	}

	db, err := alarmdb.Open(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() == 0 {
		t.Fatal("no alarms persisted")
	}
	counts := db.IncidentCounts()
	if counts[alarmdb.IncidentOpen] == 0 {
		t.Fatalf("no incidents persisted: %v", counts)
	}
}

func TestRunEmptyStore(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "flows")
	sys, err := rootcause.Create(rootcause.Config{StoreDir: storeDir})
	if err != nil {
		t.Fatal(err)
	}
	sys.Close()
	if err := run(storeDir, "netreflex", "", filepath.Join(dir, "a.json"), 0, 0, false); err == nil {
		t.Fatal("empty store must be reported")
	}
}
