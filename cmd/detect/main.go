// Command detect runs an anomaly detector over a flow store and files the
// resulting alarms into the alarm database — the left half of the paper's
// Figure 1 architecture.
//
// Usage:
//
//	detect -store /tmp/flows -detector netreflex -alarmdb /tmp/alarms.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	rootcause "repro"
	"repro/internal/flow"
)

func main() {
	var (
		storeDir = flag.String("store", "", "flow store directory (required)")
		detName  = flag.String("detector", "netreflex", "registered detector name (see rootcause.DetectorNames)")
		minerStr = flag.String("miner", "", "frequent-itemset miner for the system's extraction engine (validated at startup; default apriori)")
		dbPath   = flag.String("alarmdb", "", "alarm database JSON path (default: <store>/alarms.json)")
		from     = flag.Uint("from", 0, "span start, unix seconds (0 = store start)")
		to       = flag.Uint("to", 0, "span end, unix seconds (0 = store end)")
		corr     = flag.Bool("correlate", false,
			"after detection, dedup + correlate the stored alarms into incidents and print them")
		follow = flag.String("follow", "",
			"tail a live rcad's incident feed (SSE) at this base URL instead of running a detector")
	)
	flag.Usage = func() {
		fmt.Fprint(flag.CommandLine.Output(), `usage: detect -store DIR [flags]

Run an anomaly detector over a flow store and file the resulting alarms
into the alarm database — the left half of the paper's Figure 1. The
filed alarm IDs feed extract / rcad.

Registered detectors: netreflex (default), histogram, pca.
Registered miners (-miner, for the extraction engine the system
assembles): apriori (default), fpgrowth.

With -correlate, the stored alarms of the span are additionally
deduplicated and clustered into incidents (docs/incidents.md) and each
incident is printed with its lead-lag chain; extract them with
extract -incident ID.

With -follow URL no detector runs at all: detect tails the live
incident feed (SSE) of the rcad -live at URL, printing each incident
the watcher opens and each finished auto-extraction until the server
drains or ^C.

Example:
  detect -store /tmp/flows -detector netreflex -correlate
  detect -follow http://localhost:8080

Flags:
`)
		flag.PrintDefaults()
	}
	flag.Parse()
	if *follow != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		if err := followLive(ctx, *follow); err != nil {
			fmt.Fprintln(os.Stderr, "detect:", err)
			os.Exit(1)
		}
		return
	}
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "detect: -store is required")
		flag.Usage()
		os.Exit(2)
	}
	if *dbPath == "" {
		*dbPath = *storeDir + "/alarms.json"
	}
	if err := run(*storeDir, *detName, *minerStr, *dbPath, uint32(*from), uint32(*to), *corr); err != nil {
		fmt.Fprintln(os.Stderr, "detect:", err)
		os.Exit(1)
	}
}

func run(storeDir, detName, minerName, dbPath string, from, to uint32, correlate bool) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cfg := rootcause.Config{StoreDir: storeDir, AlarmDBPath: dbPath}
	if minerName != "" {
		opts := rootcause.DefaultExtractionOptions()
		opts.Miner = minerName
		cfg.Extraction = &opts
	}
	sys, err := rootcause.Open(cfg)
	if err != nil {
		return err
	}
	defer sys.Close()

	span := flow.Interval{Start: from, End: to}
	if span.Start == 0 || span.End == 0 {
		full, ok, err := sys.Store().Span()
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("store %s is empty", storeDir)
		}
		if span.Start == 0 {
			span.Start = full.Start
		}
		if span.End == 0 {
			span.End = full.End
		}
	}

	ids, err := sys.Detect(ctx, detName, span)
	if err != nil {
		return err
	}
	fmt.Printf("%s filed %d alarm(s) into %s\n", detName, len(ids), dbPath)
	for _, id := range ids {
		entry, err := sys.Alarm(id)
		if err != nil {
			return err
		}
		fmt.Printf("  alarm %s: %s\n", id, entry.Alarm.String())
	}
	if !correlate {
		return nil
	}

	sum, err := sys.Correlate(ctx, span)
	if err != nil {
		return err
	}
	fmt.Printf("correlated %d alarm(s) (%d after dedup) into %d incident(s)\n",
		sum.AlarmsConsidered, sum.AlarmsKept, len(sum.IncidentIDs))
	for _, id := range sum.IncidentIDs {
		entry, err := sys.Incident(id)
		if err != nil {
			return err
		}
		inc := entry.Incident
		fmt.Printf("  incident %s [%s]: %d alarm(s), %d suppressed, kinds %v\n",
			inc.ID, inc.Interval, len(inc.AlarmIDs), inc.Suppressed, inc.Kinds)
		for _, link := range inc.Chain {
			fmt.Printf("    chain: %s\n", link.String())
		}
	}
	return nil
}
