// Live-mode follower (-follow): a minimal SSE client over rcad's
// /api/v1/stream/incidents feed, printing one line per event as the
// server's watcher opens, extracts, or fails incidents.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	rootcause "repro"
)

// followLive tails the live incident feed of the rcad at baseURL until
// the server drains or ctx is cancelled (^C). Returns nil on a clean
// server-side close so `detect -follow` composes with a finite replay.
func followLive(ctx context.Context, baseURL string) error {
	url := strings.TrimRight(baseURL, "/") + "/api/v1/stream/incidents"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("follow: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	fmt.Printf("following %s\n", url)

	// SSE framing: "event:"/"data:" lines accumulate until a blank line
	// dispatches the event. Comment lines (leading ':') are keepalives.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 4<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Bytes()
		switch {
		case len(line) == 0:
			if len(data) > 0 {
				printEvent(data)
				data = nil
			}
		case bytes.HasPrefix(line, []byte("data:")):
			data = append(data, bytes.TrimSpace(line[len("data:"):])...)
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}

// printEvent renders one StreamEvent as a log line.
func printEvent(raw []byte) {
	var ev rootcause.StreamEvent
	if err := json.Unmarshal(raw, &ev); err != nil {
		fmt.Printf("?? unparseable event: %v\n", err)
		return
	}
	stamp := ev.Time.UTC().Format("15:04:05")
	inc := ev.Incident.Incident
	switch ev.Type {
	case rootcause.StreamEventIncident:
		fmt.Printf("%s incident %s [%s]: %d alarm(s), kinds %v, job %s\n",
			stamp, ev.IncidentID, inc.Interval, len(inc.AlarmIDs), inc.Kinds, ev.JobID)
	case rootcause.StreamEventExtracted:
		top := "(no itemsets)"
		if ev.Result != nil && len(ev.Result.Itemsets) > 0 {
			rep := &ev.Result.Itemsets[0]
			top = fmt.Sprintf("%s (score %.2f)", rep.Items.String(), rep.Score)
		}
		fmt.Printf("%s extracted %s (job %s): %s\n", stamp, ev.IncidentID, ev.JobID, top)
	case rootcause.StreamEventError:
		fmt.Printf("%s error %s: %s\n", stamp, ev.IncidentID, ev.Err)
	default:
		fmt.Printf("%s %s %s\n", stamp, ev.Type, ev.IncidentID)
	}
}
