package main

import (
	"context"
	"testing"

	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/nfstore"
	"repro/internal/shardstore"
	"repro/internal/stats"
)

func TestScenarioPlacements(t *testing.T) {
	cases := []struct {
		name string
		want int
	}{
		{"quiet", 0},
		{"portscan", 1},
		{"ddos", 1},
		{"udpflood", 1},
		{"table1", 4},
	}
	for _, c := range cases {
		got, err := scenarioPlacements(c.name, 3, 1)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if len(got) != c.want {
			t.Errorf("%s: %d placements, want %d", c.name, len(got), c.want)
		}
		for _, p := range got {
			if p.Bin != 3 {
				t.Errorf("%s: placement bin %d, want 3", c.name, p.Bin)
			}
			if p.Anomaly == nil {
				t.Errorf("%s: nil anomaly", c.name)
			}
		}
	}
	if _, err := scenarioPlacements("nonsense", 0, 1); err == nil {
		t.Error("unknown scenario must error")
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir() + "/store"
	err := run(dir, "portscan", 4, 300, 2, 100, 500, 100, 1, 1, 1_300_000_200, 2, false, nfstore.DefaultSegmentFormat, 0, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Running again into the same store must fail (Create refuses).
	if err := run(dir, "quiet", 2, 300, 1, 10, 10, 10, 1, 1, 0, 0, false, nfstore.DefaultSegmentFormat, 0, "", nil); err == nil {
		t.Fatal("second run into the same directory must fail")
	}
}

func TestRunSharded(t *testing.T) {
	dir := t.TempDir() + "/store"
	err := run(dir, "portscan", 4, 300, 2, 100, 500, 100, 1, 1, 1_300_000_200, 2, false, nfstore.DefaultSegmentFormat, 3, "hash", nil)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := shardstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if sh.NumShards() != 3 {
		t.Fatalf("NumShards = %d, want 3", sh.NumShards())
	}
	flows, _, _, err := sh.Count(context.Background(), flow.Interval{Start: 0, End: ^uint32(0)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if flows == 0 {
		t.Fatal("sharded store holds no flows")
	}
}

func TestRunWithTrace(t *testing.T) {
	recs := gen.SynthTraceRecords(stats.NewRNG(7), 4, 300, 50)
	dir := t.TempDir() + "/store"
	err := run(dir, "ddos", 4, 300, 2, 100, 500, 100, 1, 1, 1_300_000_200, 2, false,
		nfstore.DefaultSegmentFormat, 0, "", gen.EncodeTraceCSV(recs))
	if err != nil {
		t.Fatal(err)
	}
	store, err := nfstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	// The replayed background plus the injected flood must both be
	// present: more stored flows than the trace alone.
	flows, _, _, err := store.Count(context.Background(), flow.Interval{Start: 0, End: ^uint32(0)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if flows <= uint64(len(recs)) {
		t.Fatalf("stored %d flows, want replayed background (%d) plus injected anomaly", flows, len(recs))
	}

	// Garbage trace bytes surface the reader's error.
	if err := run(t.TempDir()+"/bad", "quiet", 4, 300, 1, 10, 10, 10, 1, 1, 1_300_000_200, 2,
		false, nfstore.DefaultSegmentFormat, 0, "", []byte("not a trace")); err == nil {
		t.Fatal("bogus trace bytes must fail the run")
	}
}
