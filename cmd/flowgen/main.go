// Command flowgen generates labeled synthetic NetFlow traces into a flow
// store — the stand-in for the GEANT/SWITCH NetFlow feeds of the paper's
// deployments. Scenarios bundle a background model with injected,
// ground-truth-annotated anomalies.
//
// Usage:
//
//	flowgen -out /tmp/flows -scenario portscan -bins 30 -sample 100
//
// Scenarios: the classic shortcuts (quiet, portscan, ddos, udpflood,
// table1 — the paper's Table 1 situation) plus the entries of the
// scenario catalog (gen.Names(); docs/scenarios.md documents each).
// Where a catalog name collides with a classic shortcut (quiet,
// portscan, udpflood) the shortcut wins, keeping historical traces
// stable.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/nfstore"
	"repro/internal/report"
	"repro/internal/shardstore"
	"repro/internal/stream"
)

func main() {
	var (
		out      = flag.String("out", "", "output store directory (required)")
		scenario = flag.String("scenario", "portscan", "scenario: quiet|portscan|ddos|udpflood|table1 or a catalog name (see usage)")
		bins     = flag.Int("bins", 30, "number of measurement bins")
		binSec   = flag.Uint("bin-seconds", nfstore.DefaultBinSeconds, "measurement bin width in seconds")
		pops     = flag.Int("pops", 4, "number of ingress PoPs")
		flowsBin = flag.Int("flows-per-bin", 400, "mean background flows per bin per PoP")
		hosts    = flag.Int("hosts", 2000, "client address pool size")
		servers  = flag.Int("servers", 300, "server address pool size")
		seed     = flag.Uint64("seed", 1, "generation seed")
		sample   = flag.Uint("sample", 1, "packet sampling rate N (1-in-N; 1 = unsampled)")
		start    = flag.Uint("start", 1_300_000_200, "trace start (unix seconds)")
		anomBin  = flag.Int("anomaly-bin", -1, "bin index for the anomaly (-1 = 2/3 of the trace)")
		diurnal  = flag.Bool("diurnal", false, "modulate background volume diurnally")
		segFmt   = flag.Int("segment-format", int(nfstore.DefaultSegmentFormat),
			"segment format for the new store: 1 = fixed rows, 2 = column blocks")
		shards    = flag.Int("shards", 0, "partition the new store into N shards (0/1 = single store)")
		partition = flag.String("shard-partition", shardstore.PartitionTime,
			"sharding scheme with -shards: time (whole bins round-robin) or hash (by router)")
		trace = flag.String("trace", "",
			"replay a real flow trace (nfcapd-style NFTR binary or CSV dump) as the background instead of synthesizing one; anomalies still inject on top")
		live = flag.Bool("live", false,
			"replay the generated trace as an NDJSON record stream in clock order instead of writing a store (to stdout, or to -live-url)")
		rate = flag.Float64("rate", 0,
			"with -live, replay rate in records per second (0 = as fast as possible)")
		liveURL = flag.String("live-url", "",
			"with -live, POST the stream to this rcad base URL's /api/v1/stream/ingest instead of stdout")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), `usage: flowgen -out DIR [flags]
       flowgen -live [-rate N] [-live-url URL] [flags]

Generate a labeled synthetic NetFlow trace into a new flow store — the
stand-in for the GEANT/SWITCH feeds of the paper's deployments. The
ground-truth table of injected anomalies is printed on success.

With -live the trace is not stored: it is replayed in clock order as an
NDJSON record stream (one JSON object per line) to stdout, or POSTed to
a live rcad's /api/v1/stream/ingest with -live-url. -rate paces the
replay in records per second (0 = flat out); the ground-truth table
goes to stderr.

With -trace FILE the background is not synthesized: the given flow dump
(nfcapd-style NFTR binary or a CSV export with nfdump-style columns) is
replayed under the scenario clock — the first record lands at -start and
records past the generated span are dropped (and counted). Sampling and
anomaly injection apply on top, so labeled anomalies ride real traffic.

Scenarios (-scenario):
  quiet      background traffic only
  portscan   one scanner sweeping a victim's ports
  ddos       distributed SYN flood on one victim
  udpflood   point-to-point UDP flood (few flows, many packets)
  table1     the paper's Table 1 situation: two scanners + two DDoS

Scenario-catalog names also work (anomalies placed at -anomaly-bin,
background from the flags; docs/scenarios.md documents each) — except
quiet, portscan and udpflood, where the classic shortcuts above win to
keep their historical traces stable:
  %s

Example:
  flowgen -out /tmp/flows -scenario portscan -bins 30 -sample 100
  flowgen -out /tmp/flows -scenario dns-amplification -bins 12
  flowgen -out /tmp/flows -scenario ddos -trace /data/flows.csv

Flags:
`, strings.Join(gen.Names(), ", "))
		flag.PrintDefaults()
	}
	flag.Parse()
	if *out == "" && !*live {
		fmt.Fprintln(os.Stderr, "flowgen: -out is required (or -live to stream)")
		flag.Usage()
		os.Exit(2)
	}
	var traceData []byte
	if *trace != "" {
		var err error
		if traceData, err = os.ReadFile(*trace); err != nil {
			fmt.Fprintln(os.Stderr, "flowgen:", err)
			os.Exit(1)
		}
	}
	var err error
	if *live {
		err = runLive(os.Stdout, *liveURL, *scenario, *bins, uint32(*binSec), *pops, *flowsBin,
			*hosts, *servers, *seed, uint32(*sample), uint32(*start), *anomBin, *diurnal, *rate,
			traceData)
	} else {
		err = run(*out, *scenario, *bins, uint32(*binSec), *pops, *flowsBin, *hosts, *servers,
			*seed, uint32(*sample), uint32(*start), *anomBin, *diurnal, uint16(*segFmt),
			*shards, *partition, traceData)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowgen:", err)
		os.Exit(1)
	}
}

func run(out, scenarioName string, bins int, binSec uint32, pops, flowsBin, hosts, servers int,
	seed uint64, sample, start uint32, anomBin int, diurnal bool, segFmt uint16,
	shards int, partition string, trace []byte) error {
	var (
		store nfstore.Engine
		err   error
	)
	if shards > 1 {
		store, err = shardstore.Create(out, binSec, shards, partition, segFmt)
	} else {
		store, err = nfstore.CreateFormat(out, binSec, segFmt)
	}
	if err != nil {
		return err
	}
	defer store.Close()

	if anomBin < 0 {
		anomBin = bins * 2 / 3
	}
	placements, err := scenarioPlacements(scenarioName, anomBin, seed)
	if err != nil {
		return err
	}
	s := gen.Scenario{
		Background: gen.Background{
			NumPoPs: pops, FlowsPerBin: flowsBin,
			Hosts: hosts, Servers: servers, Diurnal: diurnal,
		},
		Bins: bins, StartTime: start, Seed: seed,
		SampleRate: sample, Placements: placements,
		Trace: trace,
	}
	truth, err := s.Generate(store)
	if err != nil {
		return err
	}

	fmt.Printf("generated %s: span %s, %d background flows (stored)\n",
		out, truth.Span, truth.BackgroundFlows)
	if truth.TraceDropped > 0 {
		fmt.Printf("replay dropped %d trace records past the generated span\n", truth.TraceDropped)
	}
	if len(truth.Entries) > 0 {
		t := report.New("ground truth", "anno", "kind", "description", "interval",
			"injected flows", "stored flows", "stored packets")
		for _, e := range truth.Entries {
			t.AddRow(fmt.Sprintf("%d", e.Anno), string(e.Kind), e.Describe,
				e.Interval.String(),
				fmt.Sprintf("%d", e.InjectedFlows),
				fmt.Sprintf("%d", e.StoredFlows),
				fmt.Sprintf("%d", e.StoredPkts))
		}
		fmt.Print(t.String())
	}
	return nil
}

// runLive generates the scenario into a write-only collector and replays
// it as an NDJSON record stream in clock order — to w (stdout) or, with a
// base URL, POSTed to rcad's /api/v1/stream/ingest. The ground-truth
// table goes to stderr so the stream stays clean.
func runLive(w io.Writer, baseURL, scenarioName string, bins int, binSec uint32,
	pops, flowsBin, hosts, servers int, seed uint64, sample, start uint32,
	anomBin int, diurnal bool, rate float64, trace []byte) error {
	if anomBin < 0 {
		anomBin = bins * 2 / 3
	}
	placements, err := scenarioPlacements(scenarioName, anomBin, seed)
	if err != nil {
		return err
	}
	col := stream.NewCollector(binSec)
	s := gen.Scenario{
		Background: gen.Background{
			NumPoPs: pops, FlowsPerBin: flowsBin,
			Hosts: hosts, Servers: servers, Diurnal: diurnal,
		},
		Bins: bins, StartTime: start, Seed: seed,
		SampleRate: sample, Placements: placements,
		Trace: trace,
	}
	truth, err := s.Generate(col)
	if err != nil {
		return err
	}
	recs := col.Sorted()

	fmt.Fprintf(os.Stderr, "replaying %d records: span %s, %d background flows\n",
		len(recs), truth.Span, truth.BackgroundFlows)
	if len(truth.Entries) > 0 {
		t := report.New("ground truth", "anno", "kind", "description", "interval",
			"injected flows", "stored flows", "stored packets")
		for _, e := range truth.Entries {
			t.AddRow(fmt.Sprintf("%d", e.Anno), string(e.Kind), e.Describe,
				e.Interval.String(),
				fmt.Sprintf("%d", e.InjectedFlows),
				fmt.Sprintf("%d", e.StoredFlows),
				fmt.Sprintf("%d", e.StoredPkts))
		}
		fmt.Fprint(os.Stderr, t.String())
	}

	if baseURL != "" {
		return postStream(baseURL, recs, rate)
	}
	return emitStream(w, recs, rate)
}

// emitStream writes one NDJSON line per record, pacing to rate records
// per second against a wall-clock schedule (so pacing error does not
// accumulate); rate 0 streams flat out.
func emitStream(w io.Writer, recs []flow.Record, rate float64) error {
	bw := bufio.NewWriter(w)
	began := time.Now()
	for i := range recs {
		if rate > 0 {
			due := began.Add(time.Duration(float64(i) / rate * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				// Flush before sleeping so a downstream consumer sees a
				// steady trickle, not buffer-sized bursts.
				if err := bw.Flush(); err != nil {
					return err
				}
				time.Sleep(d)
			}
		}
		raw, err := json.Marshal(recs[i])
		if err != nil {
			return err
		}
		if _, err := bw.Write(append(raw, '\n')); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// postStream streams the records to an rcad ingest endpoint as one
// chunked POST, pacing the request body itself so backpressure flows
// both ways: the server blocks us when its buffer fills, and -rate
// throttles the server.
func postStream(baseURL string, recs []flow.Record, rate float64) error {
	pr, pw := io.Pipe()
	go func() { pw.CloseWithError(emitStream(pw, recs, rate)) }()
	resp, err := http.Post(strings.TrimRight(baseURL, "/")+"/api/v1/stream/ingest",
		"application/x-ndjson", pr)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ingest: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	fmt.Fprintf(os.Stderr, "flowgen: %s\n", bytes.TrimSpace(body))
	return nil
}

// scenarioPlacements maps a scenario name to its anomaly placements: the
// classic shortcuts first (keeping their historical traces stable), then
// the scenario catalog.
func scenarioPlacements(name string, bin int, seed uint64) ([]gen.Placement, error) {
	scanner := flow.MustParseIP("10.191.64.165")
	scanner2 := flow.MustParseIP("10.22.180.9")
	victim := flow.MustParseIP("198.19.137.129")
	switch name {
	case "quiet":
		return nil, nil
	case "portscan":
		return []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scanner, Victim: victim, SrcPort: 55548,
				Ports: 2000, FlowsPerPort: 2, Router: 1}, Bin: bin},
		}, nil
	case "ddos":
		return []gen.Placement{
			{Anomaly: gen.SYNFlood{Victim: victim, DstPort: 80, Sources: 2000,
				FlowsPerSource: 3, SourceNet: flow.MustParsePrefix("172.16.0.0/12"),
				Router: 0}, Bin: bin},
		}, nil
	case "udpflood":
		return []gen.Placement{
			{Anomaly: gen.UDPFlood{Src: scanner, Dst: victim, DstPort: 9999,
				Flows: 4, PacketsPerFlow: 2_000_000, Router: 2}, Bin: bin},
		}, nil
	case "table1":
		return []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scanner, Victim: victim, SrcPort: 55548,
				Ports: 62518, FlowsPerPort: 5, Router: 1}, Bin: bin},
			{Anomaly: gen.PortScan{Scanner: scanner2, Victim: victim, SrcPort: 55548,
				Ports: 54148, FlowsPerPort: 5, Router: 2}, Bin: bin},
			{Anomaly: gen.SYNFlood{Victim: victim, DstPort: 80, Sources: 18595,
				FlowsPerSource: 2, SrcPort: 3072,
				SourceNet: flow.MustParsePrefix("172.16.0.0/12"), Router: 0}, Bin: bin},
			{Anomaly: gen.SYNFlood{Victim: victim, DstPort: 80, Sources: 18640,
				FlowsPerSource: 2, SrcPort: 1024,
				SourceNet: flow.MustParsePrefix("172.16.0.0/12"), Router: 1}, Bin: bin},
		}, nil
	default:
		if def, ok := gen.Lookup(name); ok {
			return def.Placements(seed, bin), nil
		}
		return nil, fmt.Errorf("unknown scenario %q (catalog: %s)", name, strings.Join(gen.Names(), ", "))
	}
}
