package rootcause_test

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	rootcause "repro"
	"repro/internal/eval"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/stream"
)

// replayScenario instantiates a catalog scenario into an in-memory
// collector and returns its records in stream-clock order plus the
// ground truth — the live-ingest substitute for Scenario.Generate
// writing straight into the system's store.
func replayScenario(t *testing.T, name string, seed uint64) ([]rootcause.Record, *gen.Truth) {
	t.Helper()
	def, ok := gen.Lookup(name)
	if !ok {
		t.Fatalf("scenario %q not in catalog", name)
	}
	col := stream.NewCollector(300)
	truth, err := def.Scenario(seed).Generate(col)
	if err != nil {
		t.Fatal(err)
	}
	return col.Sorted(), truth
}

// TestLiveEndToEndParity is the closed-loop property test of the
// streaming subsystem: a catalog DDoS scenario replayed record by record
// through live ingest — with zero manual Detect/Correlate/Extract
// calls — must seal its bins, raise online alarms, auto-correlate them
// into an incident, auto-extract it, and the top-ranked itemset of that
// extraction must match the batch ground truth (ScoreTruth rank 1).
func TestLiveEndToEndParity(t *testing.T) {
	recs, truth := replayScenario(t, "ddos-syn", 42)

	dir := t.TempDir()
	sys, err := rootcause.Create(rootcause.Config{
		StoreDir:    filepath.Join(dir, "flows"),
		AlarmDBPath: filepath.Join(dir, "alarms.json"),
	}, rootcause.WithLive(rootcause.LiveConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if !sys.Live() {
		t.Fatal("WithLive system does not report Live()")
	}

	events, cancel, err := sys.TailIncidents()
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	var (
		collected []rootcause.StreamEvent
		tailDone  = make(chan struct{})
	)
	go func() {
		defer close(tailDone)
		for ev := range events {
			collected = append(collected, ev)
		}
	}()

	ctx := context.Background()
	for i := range recs {
		if err := sys.Ingest(ctx, &recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.DrainLive(ctx); err != nil {
		t.Fatal(err)
	}
	<-tailDone // the feed closes at drain, after the terminal events

	st := sys.StreamStats()
	if st == nil {
		t.Fatal("StreamStats is nil in live mode")
	}
	if st.Ingested != uint64(len(recs)) || st.Dropped != 0 || st.AddErrors != 0 {
		t.Fatalf("ingest census = %+v, want %d/0/0", st.Stats, len(recs))
	}
	if st.SealedBins < 12 {
		t.Fatalf("sealed %d bins, want >= 12", st.SealedBins)
	}
	if st.Alarms == 0 {
		t.Fatal("online detectors raised no alarms")
	}
	if st.AutoSubmitted == 0 || st.AutoExtracted == 0 {
		t.Fatalf("automation census = submitted %d extracted %d failed %d",
			st.AutoSubmitted, st.AutoExtracted, st.AutoFailed)
	}

	// The store is fully sealed: batch queries see every replayed record.
	flows, pkts, _, err := sys.Store().Count(ctx, truth.Span, nil)
	if err != nil {
		t.Fatal(err)
	}
	if flows != uint64(len(recs)) {
		t.Fatalf("store holds %d flows after drain, want %d", flows, len(recs))
	}
	if pkts == 0 {
		t.Fatal("store holds no packets")
	}

	// The feed carried the incident lifecycle: at least one incident
	// opened, and the extraction covering the injected flood concluded.
	// (Other incidents may extract too — online detection over noisy
	// background is allowed its incidentals; the property is that the true
	// anomaly's incident is among them with the right root cause.)
	var extracted *rootcause.StreamEvent
	sawIncident := false
	for i := range collected {
		switch collected[i].Type {
		case rootcause.StreamEventIncident:
			sawIncident = true
			if collected[i].JobID == "" || collected[i].IncidentID == "" {
				t.Fatalf("incident event without job/incident ID: %+v", collected[i])
			}
		case rootcause.StreamEventExtracted:
			if collected[i].Incident.Incident.Interval.Overlaps(truth.Entries[0].Interval) {
				extracted = &collected[i]
			}
		case rootcause.StreamEventError:
			t.Fatalf("error event on the feed: %s", collected[i].Err)
		}
	}
	if !sawIncident || extracted == nil {
		t.Fatalf("feed carried %d events, missing incident/extraction over the flood interval", len(collected))
	}
	if extracted.Result == nil || len(extracted.Result.Itemsets) == 0 {
		t.Fatal("extracted event carries no itemsets")
	}

	// Parity with batch ground truth: scored over the incident's
	// interval, the top-ranked itemset is attributed to the injected
	// flood — the paper's Table-1 outcome with no human in the path.
	ts, err := eval.ScoreTruth(sys.Store(), extracted.Incident.Incident.Interval,
		extracted.Result, truth, eval.DefaultScoreOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ts.Rank != 1 {
		t.Fatalf("true cause ranked %d (0 = absent), want 1; itemsets:\n%s",
			ts.Rank, extracted.Result.Table())
	}

	// The incident record reflects the automation.
	inc, err := sys.Incident(extracted.IncidentID)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Status != rootcause.IncidentExtracted {
		t.Fatalf("incident status after auto-extraction = %q", inc.Status)
	}

	// A drained system rejects further ingest but stays usable for batch
	// reads; DrainLive is idempotent.
	if err := sys.Ingest(ctx, &recs[0]); !errors.Is(err, stream.ErrClosed) {
		t.Fatalf("post-drain Ingest err = %v, want stream.ErrClosed", err)
	}
	if err := sys.DrainLive(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.TailIncidents(); !errors.Is(err, rootcause.ErrNotLive) {
		t.Fatalf("post-drain TailIncidents err = %v, want ErrNotLive", err)
	}
}

// TestLiveRequiresWithLive pins the batch-mode rejections.
func TestLiveRequiresWithLive(t *testing.T) {
	sys, err := rootcause.Create(rootcause.Config{
		StoreDir: filepath.Join(t.TempDir(), "flows"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Live() {
		t.Fatal("batch system reports Live()")
	}
	r := rootcause.Record{Start: 1, Proto: flow.ProtoTCP, Packets: 1, Bytes: 40}
	if err := sys.Ingest(context.Background(), &r); !errors.Is(err, rootcause.ErrNotLive) {
		t.Fatalf("Ingest err = %v, want ErrNotLive", err)
	}
	if sys.TryIngest(&r) {
		t.Fatal("TryIngest accepted a record on a batch system")
	}
	if _, _, err := sys.TailIncidents(); !errors.Is(err, rootcause.ErrNotLive) {
		t.Fatalf("TailIncidents err = %v, want ErrNotLive", err)
	}
	if err := sys.DrainLive(context.Background()); !errors.Is(err, rootcause.ErrNotLive) {
		t.Fatalf("DrainLive err = %v, want ErrNotLive", err)
	}
	if sys.StreamStats() != nil {
		t.Fatal("StreamStats non-nil on a batch system")
	}
	if _, err := rootcause.Create(rootcause.Config{
		StoreDir: filepath.Join(t.TempDir(), "flows2"),
	}, rootcause.WithLive(rootcause.LiveConfig{Detectors: []string{"netreflex"}})); err == nil {
		t.Fatal("batch-only detector accepted for live mode")
	}
}

// TestLiveSoakConcurrent is the -race soak: several producers ingest
// concurrently while readers hammer the query surface mid-seal, then a
// drain races a late producer. The assertions are conservation laws —
// every record is either ingested or dropped, and the sealed store holds
// exactly the ingested ones.
func TestLiveSoakConcurrent(t *testing.T) {
	sys, err := rootcause.Create(rootcause.Config{
		StoreDir: filepath.Join(t.TempDir(), "flows"),
	}, rootcause.WithLive(rootcause.LiveConfig{
		Buffer: 256,
		// Observation only: extraction latency is not what this test
		// shakes out, data races are.
		DisableAutoExtract: true,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	const (
		producers = 4
		perProd   = 3000
	)
	span := rootcause.Interval{Start: 0, End: 3000}
	ctx := context.Background()

	var wg sync.WaitGroup
	stopReads := make(chan struct{})
	// Readers: Count and Records across the whole span while bins seal
	// underneath them.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopReads:
					return
				default:
				}
				if _, _, _, err := sys.Store().Count(ctx, span, nil); err != nil {
					t.Errorf("concurrent Count: %v", err)
					return
				}
				if _, err := sys.Flows(ctx, span, "proto tcp"); err != nil {
					t.Errorf("concurrent Flows: %v", err)
					return
				}
			}
		}()
	}
	// Producers: interleaved clocks, so seals happen while others still
	// write; a mix of blocking and non-blocking ingest.
	var prodWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			for i := 0; i < perProd; i++ {
				r := rootcause.Record{
					Start:   uint32(i), // producers sweep the span together
					SrcIP:   flow.IPFromOctets(10, byte(p), byte(i>>8), byte(i)),
					DstIP:   flow.IPFromOctets(192, 0, 2, byte(i%7)),
					SrcPort: uint16(1024 + i%50000),
					DstPort: 443,
					Proto:   flow.ProtoTCP,
					Router:  uint16(p),
					Packets: 2,
					Bytes:   80,
				}
				if p%2 == 0 {
					if err := sys.Ingest(ctx, &r); err != nil {
						t.Errorf("producer %d: %v", p, err)
						return
					}
				} else {
					sys.TryIngest(&r) // drops are legal, just counted
				}
			}
		}(p)
	}
	prodWG.Wait()
	close(stopReads)
	wg.Wait()
	if err := sys.DrainLive(ctx); err != nil {
		t.Fatal(err)
	}

	st := sys.StreamStats()
	if st.Ingested+st.Dropped != producers*perProd {
		t.Fatalf("conservation violated: ingested %d + dropped %d != %d",
			st.Ingested, st.Dropped, producers*perProd)
	}
	if st.Ingested < 2*perProd {
		t.Fatalf("blocking producers lost records: ingested %d < %d", st.Ingested, 2*perProd)
	}
	flows, _, _, err := sys.Store().Count(ctx, span, nil)
	if err != nil {
		t.Fatal(err)
	}
	if flows != st.Ingested {
		t.Fatalf("store holds %d flows, census says %d", flows, st.Ingested)
	}
	if len(st.OpenBins) != 0 {
		t.Fatalf("open bins after drain: %v", st.OpenBins)
	}
}

// TestLiveSubscriberLag pins the tail contract: a subscriber that never
// reads loses events instead of stalling the watcher, and the drain
// still completes promptly.
func TestLiveSubscriberLag(t *testing.T) {
	recs, _ := replayScenario(t, "ddos-syn", 7)
	sys, err := rootcause.Create(rootcause.Config{
		StoreDir: filepath.Join(t.TempDir(), "flows"),
	}, rootcause.WithLive(rootcause.LiveConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	// Subscribe and never read.
	_, cancel, err := sys.TailIncidents()
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	ctx := context.Background()
	for i := range recs {
		if err := sys.Ingest(ctx, &recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	dctx, dcancel := context.WithTimeout(ctx, 2*time.Minute)
	defer dcancel()
	if err := sys.DrainLive(dctx); err != nil {
		t.Fatalf("drain with a stuck subscriber: %v", err)
	}
	if st := sys.StreamStats(); st.AutoSubmitted == 0 {
		t.Fatal("no incident auto-submitted")
	}
}
