#!/bin/sh
# mdlinkcheck verifies that every relative markdown link in the
# repository resolves to an existing file or directory. External URLs,
# mailto links and pure in-page anchors are skipped. Run from the repo
# root; exits non-zero listing every broken link.
set -u

status=0
for f in $(find . -name '*.md' -not -path './.git/*'); do
	dir=$(dirname "$f")
	links=$(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//' || true)
	for link in $links; do
		case "$link" in
		http://* | https://* | mailto:* | \#*) continue ;;
		esac
		target="${link%%#*}"
		[ -z "$target" ] && continue
		if [ ! -e "$dir/$target" ]; then
			echo "$f: broken link: $link" >&2
			status=1
		fi
	done
done
if [ "$status" -eq 0 ]; then
	echo "mdlinkcheck: all relative links resolve"
fi
exit $status
