package rootcause_test

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	rootcause "repro"
	"repro/internal/alarmdb"
	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/gen"
)

// newScanSystem builds a system over a generated port-scan trace with
// one filed alarm, passing opts through to Create.
func newScanSystem(t *testing.T, opts ...rootcause.Option) (*rootcause.System, string) {
	t.Helper()
	sys, err := rootcause.Create(rootcause.Config{
		StoreDir: filepath.Join(t.TempDir(), "flows"),
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	scanner := flow.MustParseIP("10.191.64.165")
	victim := flow.MustParseIP("198.19.137.129")
	scenario := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 200},
		Bins:       4, StartTime: 1_300_000_200, Seed: 7,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scanner, Victim: victim, SrcPort: 55548,
				Ports: 1000, FlowsPerPort: 1, Router: 1}, Bin: 2},
		},
	}
	truth, err := scenario.Generate(sys.Store())
	if err != nil {
		t.Fatal(err)
	}
	id := sys.FileAlarm(rootcause.Alarm{
		Detector: "test",
		Interval: truth.Entries[0].Interval,
		Kind:     detector.KindPortScan,
		Meta: []detector.MetaItem{
			{Feature: flow.FeatSrcIP, Value: uint32(scanner)},
		},
	})
	return sys, id
}

// TestJobStressDeterministic is the acceptance stress test: 32
// concurrent submissions against WithJobWorkers(4) all complete, and
// every per-job result is identical to the synchronous Extract outcome.
func TestJobStressDeterministic(t *testing.T) {
	sys, alarmID := newScanSystem(t,
		rootcause.WithJobWorkers(4), rootcause.WithJobQueueDepth(64))

	// Synchronous baseline first — the job path must reproduce it bit
	// for bit.
	want, err := sys.Extract(t.Context(), alarmID)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Itemsets) == 0 {
		t.Fatal("baseline extraction produced no itemsets")
	}

	const n = 32
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		id, err := sys.Submit(rootcause.JobRequest{AlarmID: alarmID})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = id
	}
	for i, id := range ids {
		jr, err := sys.Wait(t.Context(), id)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if jr.Status.State != rootcause.JobDone {
			t.Fatalf("job %d state = %s", i, jr.Status.State)
		}
		if !reflect.DeepEqual(jr.Result.Itemsets, want.Itemsets) {
			t.Fatalf("job %d itemsets diverge from synchronous Extract:\n got %v\nwant %v",
				i, jr.Result.Itemsets, want.Itemsets)
		}
		if jr.Result.CandidateFlows != want.CandidateFlows ||
			jr.Result.CandidatePackets != want.CandidatePackets {
			t.Fatalf("job %d candidate totals diverge", i)
		}
	}
}

// TestSubmitQueueFullRejected: with one worker parked and the queue at
// depth, the next submission is rejected immediately — not blocked.
func TestSubmitQueueFullRejected(t *testing.T) {
	sys := newEmptySystem(t, rootcause.WithJobWorkers(1), rootcause.WithJobQueueDepth(1))
	ids := fileAlarms(sys, 3)
	release := make(chan struct{})
	defer close(release)
	block := rootcause.WithExtractFunc(func(ctx context.Context, a *rootcause.Alarm) (*rootcause.Result, error) {
		select {
		case <-release:
			return &rootcause.Result{Alarm: *a}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})

	runningID, err := sys.Submit(rootcause.JobRequest{AlarmID: ids[0]}, block)
	if err != nil {
		t.Fatal(err)
	}
	waitJobState(t, sys, runningID, rootcause.JobRunning)
	if _, err := sys.Submit(rootcause.JobRequest{AlarmID: ids[1]}, block); err != nil {
		t.Fatalf("queued submission rejected: %v", err)
	}
	start := time.Now()
	_, err = sys.Submit(rootcause.JobRequest{AlarmID: ids[2]}, block)
	if !errors.Is(err, rootcause.ErrJobQueueFull) {
		t.Fatalf("err = %v, want ErrJobQueueFull", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("rejection took %s — admission control must not block", d)
	}
}

// TestCancelJobWhileQueued: a queued job cancels in place; its
// extraction never starts.
func TestCancelJobWhileQueued(t *testing.T) {
	sys := newEmptySystem(t, rootcause.WithJobWorkers(1), rootcause.WithJobQueueDepth(2))
	ids := fileAlarms(sys, 2)
	release := make(chan struct{})
	ran := make(chan string, 2)
	fn := rootcause.WithExtractFunc(func(ctx context.Context, a *rootcause.Alarm) (*rootcause.Result, error) {
		ran <- a.ID
		select {
		case <-release:
			return &rootcause.Result{Alarm: *a}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	running, err := sys.Submit(rootcause.JobRequest{AlarmID: ids[0]}, fn)
	if err != nil {
		t.Fatal(err)
	}
	waitJobState(t, sys, running, rootcause.JobRunning)
	queued, err := sys.Submit(rootcause.JobRequest{AlarmID: ids[1]}, fn)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CancelJob(queued); err != nil {
		t.Fatal(err)
	}
	st, err := sys.Job(queued)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != rootcause.JobCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	// Release the runner and let the pool drain; the canceled job's
	// extraction must never have started.
	close(release)
	if _, err := sys.Wait(t.Context(), running); err != nil {
		t.Fatal(err)
	}
	for {
		select {
		case got := <-ran:
			if got == ids[1] {
				t.Fatal("canceled-while-queued extraction ran")
			}
			continue
		default:
		}
		break
	}
}

// TestCancelJobMidExtraction: CancelJob propagates through the job
// context into the extraction function — the exact context the miner
// loop and store scans check every stride.
func TestCancelJobMidExtraction(t *testing.T) {
	sys := newEmptySystem(t, rootcause.WithJobWorkers(1))
	ids := fileAlarms(sys, 1)
	entered := make(chan struct{})
	var once sync.Once
	id, err := sys.Submit(rootcause.JobRequest{AlarmID: ids[0]},
		rootcause.WithExtractFunc(func(ctx context.Context, a *rootcause.Alarm) (*rootcause.Result, error) {
			once.Do(func() { close(entered) })
			<-ctx.Done() // the mining loop's cancellation point
			return nil, ctx.Err()
		}))
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	if err := sys.CancelJob(id); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Wait(t.Context(), id); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait err = %v, want context.Canceled", err)
	}
	st, err := sys.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != rootcause.JobCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
}

// TestBatchJob: a batch job retains per-alarm outcomes in submission
// order, streams them through the WithBatchResults sink, and reports
// completed/total progress.
func TestBatchJob(t *testing.T) {
	sys := newEmptySystem(t, rootcause.WithJobWorkers(2))
	ids := fileAlarms(sys, 3)
	submitted := append(append([]string{}, ids...), "404")
	var mu sync.Mutex
	var streamed []string
	sink := func(r rootcause.ExtractResult) {
		mu.Lock()
		streamed = append(streamed, r.AlarmID)
		mu.Unlock()
	}
	id, err := sys.Submit(rootcause.JobRequest{AlarmIDs: submitted},
		rootcause.WithBatchResults(sink),
		rootcause.WithConcurrency(2),
		rootcause.WithExtractFunc(func(ctx context.Context, a *rootcause.Alarm) (*rootcause.Result, error) {
			return &rootcause.Result{Alarm: *a}, nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	jr, err := sys.Wait(t.Context(), id)
	if err != nil {
		t.Fatal(err)
	}
	if jr.Status.Kind != rootcause.JobKindExtractBatch {
		t.Fatalf("kind = %s", jr.Status.Kind)
	}
	if len(jr.Batch) != len(submitted) {
		t.Fatalf("%d outcomes, want %d", len(jr.Batch), len(submitted))
	}
	for i, r := range jr.Batch {
		if r.AlarmID != submitted[i] {
			t.Fatalf("outcome %d is %q, want submission order %q", i, r.AlarmID, submitted[i])
		}
	}
	if jr.Batch[3].Err == nil || !errors.Is(jr.Batch[3].Err, alarmdb.ErrNotFound) {
		t.Fatalf("unknown alarm outcome err = %v", jr.Batch[3].Err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(streamed) != len(submitted) {
		t.Fatalf("sink saw %d results, want %d", len(streamed), len(submitted))
	}
	if jr.Status.Progress.Completed != len(submitted) || jr.Status.Progress.Total != len(submitted) {
		t.Fatalf("final progress = %+v", jr.Status.Progress)
	}
}

// TestSubmitValidation: malformed requests and unknown miners fail at
// submission time, before a job is admitted.
func TestSubmitValidation(t *testing.T) {
	sys := newEmptySystem(t)
	ids := fileAlarms(sys, 1)
	if _, err := sys.Submit(rootcause.JobRequest{}); err == nil {
		t.Fatal("empty request must be rejected")
	}
	if _, err := sys.Submit(rootcause.JobRequest{AlarmID: ids[0], AlarmIDs: ids}); err == nil {
		t.Fatal("ambiguous request must be rejected")
	}
	if _, err := sys.Submit(rootcause.JobRequest{AlarmID: ids[0]},
		rootcause.WithMiner("frobnicator")); err == nil {
		t.Fatal("unknown miner must fail the submission, not the job")
	}
	if len(sys.Jobs()) != 0 {
		t.Fatalf("rejected submissions must not create jobs: %v", sys.Jobs())
	}
}

// TestWaitSurfacesDomainErrors: a failed job's error keeps its identity
// across the job boundary (the HTTP layer branches on it for 404s).
func TestWaitSurfacesDomainErrors(t *testing.T) {
	sys := newEmptySystem(t)
	id, err := sys.Submit(rootcause.JobRequest{AlarmID: "404"})
	if err != nil {
		t.Fatal(err)
	}
	_, werr := sys.Wait(t.Context(), id)
	if !errors.Is(werr, alarmdb.ErrNotFound) {
		t.Fatalf("Wait err = %v, want alarmdb.ErrNotFound", werr)
	}
	st, err := sys.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != rootcause.JobFailed || st.Error == "" {
		t.Fatalf("status = %+v", st)
	}
	// JobResult for a failed job surfaces the same error.
	if _, rerr := sys.JobResult(id); !errors.Is(rerr, alarmdb.ErrNotFound) {
		t.Fatalf("JobResult err = %v", rerr)
	}
}

// TestJobProgressObserver: WithProgress receives the engine's sampled
// observations during a real extraction job, and the final status
// carries the last sample.
func TestJobProgressObserver(t *testing.T) {
	sys, alarmID := newScanSystem(t)
	var mu sync.Mutex
	phases := map[string]bool{}
	id, err := sys.Submit(rootcause.JobRequest{AlarmID: alarmID},
		rootcause.WithProgress(func(p rootcause.ExtractionProgress) {
			mu.Lock()
			phases[p.Phase] = true
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	jr, err := sys.Wait(t.Context(), id)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, want := range []string{"candidates", "mine-flows", "rank"} {
		if !phases[want] {
			t.Fatalf("phase %q never observed (got %v)", want, phases)
		}
	}
	if jr.Status.Progress.Phase == "" {
		t.Fatalf("final status carries no progress: %+v", jr.Status)
	}
}

// TestWatchJob: the subscription stream ends with the terminal
// snapshot.
func TestWatchJob(t *testing.T) {
	sys, alarmID := newScanSystem(t)
	id, err := sys.Submit(rootcause.JobRequest{AlarmID: alarmID})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := sys.WatchJob(id)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	var last rootcause.JobStatus
	n := 0
	for st := range ch {
		last = st
		n++
	}
	if n == 0 {
		t.Fatal("no snapshots received")
	}
	if last.State != rootcause.JobDone {
		t.Fatalf("terminal snapshot = %+v", last)
	}
}

// TestResultTTLThroughSystem: WithResultTTL expires retained results.
func TestResultTTLThroughSystem(t *testing.T) {
	sys := newEmptySystem(t, rootcause.WithResultTTL(50*time.Millisecond))
	ids := fileAlarms(sys, 1)
	id, err := sys.Submit(rootcause.JobRequest{AlarmID: ids[0]},
		rootcause.WithExtractFunc(func(ctx context.Context, a *rootcause.Alarm) (*rootcause.Result, error) {
			return &rootcause.Result{Alarm: *a}, nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Wait(t.Context(), id); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.JobResult(id); err != nil {
		t.Fatalf("fresh result: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := sys.JobResult(id); errors.Is(err, rootcause.ErrJobNotFound) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("result never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitJobState polls until the job reaches the wanted state.
func waitJobState(t *testing.T, sys *rootcause.System, id string, want rootcause.JobState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st, err := sys.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	st, _ := sys.Job(id)
	t.Fatalf("job %s never reached %s (state %s)", id, want, st.State)
}
