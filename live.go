package rootcause

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alarmdb"
	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/stream"
)

// LiveConfig configures the live streaming pipeline (WithLive).
type LiveConfig struct {
	// Detectors names the online detectors fed per record (registry
	// names that implement the stream.Online contract). Empty selects
	// the built-ins: "cusum" and "sketch".
	Detectors []string
	// Buffer bounds the ingest channel (default stream.DefaultBuffer).
	// A full buffer blocks Ingest (backpressure) and drops TryIngest.
	Buffer int
	// SealLagSeconds delays sealing a bin this long past its end so
	// slightly out-of-order records still land in it (default 0).
	SealLagSeconds uint32
	// DisableAutoExtract turns the watcher's job auto-submission off:
	// bins still seal and alarms still store and correlate, but no
	// extraction jobs are submitted — observation without the mining
	// cost.
	DisableAutoExtract bool
}

// WithLive makes Create/Open start the live streaming pipeline on the
// assembled system: Ingest/TryIngest accept records continuously, bins
// seal and index themselves as the stream clock crosses boundaries,
// online detectors raise alarms mid-bin, and a watcher correlates each
// sealed bin's alarms into incidents and auto-submits one extraction
// job per incident — the packets-to-incidents loop with no human in the
// path. Construction option.
func WithLive(cfg LiveConfig) Option {
	return func(o *callOptions) { o.live = &cfg }
}

// ErrNotLive rejects streaming calls on a system built without WithLive.
var ErrNotLive = errors.New("rootcause: system is not in live mode (use WithLive)")

// Stream event types (StreamEvent.Type).
const (
	// StreamEventIncident announces a newly opened incident whose
	// extraction job was just auto-submitted.
	StreamEventIncident = "incident"
	// StreamEventExtracted carries a finished auto-extraction: the
	// incident and its ranked itemsets.
	StreamEventExtracted = "extracted"
	// StreamEventError reports a failed auto-submission or extraction.
	StreamEventError = "error"
)

// StreamEvent is one observation on the live incident feed
// (TailIncidents, rcad's /api/v1/stream/incidents SSE tail).
type StreamEvent struct {
	// Type is one of the StreamEvent* constants.
	Type string `json:"type"`
	// Time is when the event was published.
	Time time.Time `json:"time"`
	// Bin is the sealed bin that triggered the watcher pass.
	Bin Interval `json:"bin"`
	// IncidentID names the incident ("i1", "i2", ...).
	IncidentID string `json:"incident_id"`
	// Incident is the stored incident snapshot at publish time.
	Incident IncidentEntry `json:"incident"`
	// JobID is the auto-submitted extraction job.
	JobID string `json:"job_id,omitempty"`
	// Result holds the ranked itemsets of an extracted event.
	Result *Result `json:"result,omitempty"`
	// Err describes an error event.
	Err string `json:"error,omitempty"`
}

// StreamStats is the live-mode census: the pipeline's ingest counters
// plus the watcher's incident-automation counters. Surfaced by
// System.StreamStats and rcad's /api/health.
type StreamStats struct {
	stream.Stats
	// WatcherBacklog is how many sealed-bin alarm batches wait for the
	// watcher (correlation + submission) to catch up.
	WatcherBacklog int `json:"watcher_backlog"`
	// AutoSubmitted counts extraction jobs the watcher submitted.
	AutoSubmitted uint64 `json:"auto_submitted"`
	// AutoExtracted counts auto-submitted jobs that finished with a
	// result.
	AutoExtracted uint64 `json:"auto_extracted"`
	// AutoFailed counts auto-submitted jobs that failed or could not be
	// submitted.
	AutoFailed uint64 `json:"auto_failed"`
}

// sealedBatch is one sealed bin's alarm delivery, queued for the watcher.
type sealedBatch struct {
	bin    Interval
	alarms []detector.Alarm
}

// liveState is the streaming machinery attached to a System by WithLive:
// the ingest pipeline plus the watcher that turns sealed-bin alarms into
// incidents and extraction jobs.
type liveState struct {
	sys  *System
	cfg  LiveConfig
	pipe *stream.Pipeline

	batches     chan sealedBatch
	watcherDone chan struct{}
	jobWG       sync.WaitGroup // in-flight auto-extraction waiters
	drainOnce   sync.Once
	drainErr    error

	autoSubmitted atomic.Uint64
	autoExtracted atomic.Uint64
	autoFailed    atomic.Uint64

	mu        sync.Mutex
	subs      map[int]chan StreamEvent
	nextSub   int
	submitted map[string]bool // incident IDs with a submitted job
	span      Interval        // union of alarm intervals seen (correlation window)
}

// startLive wires the pipeline and watcher onto the system. Called from
// assemble; o carries the construction options (correlation tuning).
func (s *System) startLive(cfg LiveConfig) error {
	dets, err := stream.BuildDetectors(cfg.Detectors)
	if err != nil {
		return fmt.Errorf("rootcause: live detectors: %w", err)
	}
	lv := &liveState{
		sys:         s,
		cfg:         cfg,
		batches:     make(chan sealedBatch, 64),
		watcherDone: make(chan struct{}),
		subs:        map[int]chan StreamEvent{},
		submitted:   map[string]bool{},
	}
	pipe, err := stream.New(stream.Config{
		Store:     s.store,
		Detectors: dets,
		Buffer:    cfg.Buffer,
		SealLag:   cfg.SealLagSeconds,
		OnSealed:  lv.onSealed,
	})
	if err != nil {
		return err
	}
	lv.pipe = pipe
	s.live = lv
	go lv.watch()
	return nil
}

// Live reports whether the system runs the streaming pipeline.
func (s *System) Live() bool { return s.live != nil }

// Ingest submits one record to the live pipeline, blocking while the
// ingest buffer is full (backpressure; ctx bounds the wait). The record
// lands in the store, feeds the online detectors, and advances the
// stream clock — sealing any bin the clock leaves behind.
func (s *System) Ingest(ctx context.Context, r *Record) error {
	if s.live == nil {
		return ErrNotLive
	}
	return s.live.pipe.Ingest(ctx, r)
}

// TryIngest is the non-blocking Ingest: a full buffer drops the record,
// counts the drop (StreamStats.Dropped), and returns false.
func (s *System) TryIngest(r *Record) bool {
	if s.live == nil {
		return false
	}
	return s.live.pipe.TryIngest(r)
}

// StreamStats returns the live-mode census, nil when not in live mode.
func (s *System) StreamStats() *StreamStats {
	lv := s.live
	if lv == nil {
		return nil
	}
	return &StreamStats{
		Stats:          lv.pipe.Stats(),
		WatcherBacklog: len(lv.batches),
		AutoSubmitted:  lv.autoSubmitted.Load(),
		AutoExtracted:  lv.autoExtracted.Load(),
		AutoFailed:     lv.autoFailed.Load(),
	}
}

// TailIncidents subscribes to the live incident feed: one StreamEvent
// when an incident opens (job submitted) and one when its extraction
// finishes, closed when the subscription is canceled or live mode
// drains. A subscriber that falls behind loses events rather than
// stalling the watcher — the feed is a tail, not a durable log (the
// alarm database is). Always call the returned cancel function.
func (s *System) TailIncidents() (<-chan StreamEvent, func(), error) {
	lv := s.live
	if lv == nil {
		return nil, nil, ErrNotLive
	}
	lv.mu.Lock()
	defer lv.mu.Unlock()
	if lv.subs == nil {
		return nil, nil, ErrNotLive // already drained
	}
	id := lv.nextSub
	lv.nextSub++
	ch := make(chan StreamEvent, 64)
	lv.subs[id] = ch
	cancel := func() {
		lv.mu.Lock()
		defer lv.mu.Unlock()
		if sub, ok := lv.subs[id]; ok {
			delete(lv.subs, id)
			close(sub)
		}
	}
	return ch, cancel, nil
}

// DrainLive finishes the stream: ingest stops, buffered records are
// consumed, every open bin seals, the watcher processes the remaining
// alarm batches, and in-flight auto-extractions conclude. After a drain
// the system is still fully usable batch-style; further Ingest calls
// fail with stream.ErrClosed. Idempotent; ctx bounds the wait.
func (s *System) DrainLive(ctx context.Context) error {
	lv := s.live
	if lv == nil {
		return ErrNotLive
	}
	done := make(chan struct{})
	go func() {
		lv.drainOnce.Do(lv.drain)
		close(done)
	}()
	select {
	case <-done:
		return lv.drainErr
	case <-ctx.Done():
		return ctx.Err()
	}
}

// drain is the one-shot drain sequence.
func (lv *liveState) drain() {
	lv.drainErr = lv.pipe.Close() // seals remaining bins, delivers alarms
	close(lv.batches)             // watcher exits after the backlog
	<-lv.watcherDone
	lv.jobWG.Wait() // extraction waiters publish their terminal events
	lv.mu.Lock()
	defer lv.mu.Unlock()
	for id, ch := range lv.subs {
		delete(lv.subs, id)
		close(ch)
	}
	lv.subs = nil
}

// onSealed runs on the pipeline worker after each bin seals. The send
// blocks when the watcher backlog is full — backpressure reaches all
// the way back to producers instead of losing alarms.
func (lv *liveState) onSealed(bin flow.Interval, alarms []detector.Alarm) {
	lv.batches <- sealedBatch{bin: bin, alarms: alarms}
}

// watch is the watcher loop: each sealed bin's alarms are stored,
// correlated into incidents, and new incidents auto-submitted for
// extraction.
func (lv *liveState) watch() {
	defer close(lv.watcherDone)
	for b := range lv.batches {
		lv.processSealed(b)
	}
}

// processSealed handles one sealed bin's alarm batch.
func (lv *liveState) processSealed(b sealedBatch) {
	if len(b.alarms) == 0 {
		return
	}
	lv.sys.alarms.InsertAll(b.alarms)
	span := lv.extendSpan(b.alarms)
	sum, err := lv.sys.Correlate(context.Background(), span)
	if err != nil {
		lv.autoFailed.Add(1)
		lv.publish(StreamEvent{Type: StreamEventError, Bin: b.bin, Err: err.Error()})
		return
	}
	if lv.cfg.DisableAutoExtract {
		return
	}
	for _, id := range sum.IncidentIDs {
		lv.maybeSubmit(b.bin, id)
	}
}

// extendSpan grows the watcher's correlation window to cover the new
// alarms and returns it. Re-correlating the whole window every seal
// keeps incident assembly identical to a batch Correlate over the same
// alarms — reconciliation is idempotent, so stable incidents keep their
// IDs and growing ones absorb their members.
func (lv *liveState) extendSpan(alarms []detector.Alarm) Interval {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	for i := range alarms {
		iv := alarms[i].Interval
		if lv.span.Start == 0 && lv.span.End == 0 {
			lv.span = iv
			continue
		}
		lv.span.Start = min(lv.span.Start, iv.Start)
		lv.span.End = max(lv.span.End, iv.End)
	}
	return lv.span
}

// maybeSubmit submits the incident's extraction job unless it already
// has one (or is no longer open — merged incidents extract through
// their absorbing incident).
func (lv *liveState) maybeSubmit(bin Interval, id string) {
	entry, err := lv.sys.alarms.Incident(id)
	if err != nil || entry.Status != alarmdb.IncidentOpen {
		return
	}
	lv.mu.Lock()
	if lv.submitted[id] {
		lv.mu.Unlock()
		return
	}
	lv.submitted[id] = true
	lv.mu.Unlock()
	jobID, err := lv.sys.Submit(JobRequest{IncidentID: id})
	if err != nil {
		// A full queue (or any submit failure) un-marks the incident so a
		// later seal retries it instead of dropping it forever.
		lv.mu.Lock()
		lv.submitted[id] = false
		lv.mu.Unlock()
		lv.autoFailed.Add(1)
		lv.publish(StreamEvent{Type: StreamEventError, Bin: bin, IncidentID: id, Incident: entry, Err: err.Error()})
		return
	}
	lv.autoSubmitted.Add(1)
	lv.publish(StreamEvent{Type: StreamEventIncident, Bin: bin, IncidentID: id, Incident: entry, JobID: jobID})
	lv.jobWG.Add(1)
	go lv.awaitJob(bin, id, jobID)
}

// awaitJob waits for one auto-extraction to conclude and publishes the
// terminal event.
func (lv *liveState) awaitJob(bin Interval, incidentID, jobID string) {
	defer lv.jobWG.Done()
	res, err := lv.sys.Wait(context.Background(), jobID)
	entry, _ := lv.sys.alarms.Incident(incidentID)
	if err != nil {
		// A later seal can grow the incident's alarm set before this job
		// ran: correlation re-keys the membership under a fresh incident
		// and marks this one merged, so the job fails by design. The
		// absorbing incident got its own submission on the pass that
		// created it — this job was superseded, not lost.
		if entry.Status == alarmdb.IncidentMerged {
			return
		}
		lv.autoFailed.Add(1)
		lv.publish(StreamEvent{Type: StreamEventError, Bin: bin, IncidentID: incidentID, Incident: entry, JobID: jobID, Err: err.Error()})
		return
	}
	lv.autoExtracted.Add(1)
	lv.publish(StreamEvent{Type: StreamEventExtracted, Bin: bin, IncidentID: incidentID, Incident: entry, JobID: jobID, Result: res.Result})
}

// publish fans an event to every subscriber, dropping to slow ones.
func (lv *liveState) publish(ev StreamEvent) {
	ev.Time = time.Now()
	lv.mu.Lock()
	defer lv.mu.Unlock()
	for _, ch := range lv.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}
