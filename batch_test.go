package rootcause_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	rootcause "repro"
	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/nfstore"
)

// fakeDetector is an out-of-package detector implementation: the
// registry's reason to exist.
type fakeDetector struct {
	name   string
	alarms []rootcause.Alarm
}

func (d *fakeDetector) Name() string { return d.name }

func (d *fakeDetector) Detect(ctx context.Context, _ nfstore.Engine, span flow.Interval) ([]detector.Alarm, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]detector.Alarm, 0, len(d.alarms))
	for _, a := range d.alarms {
		if a.Interval.Overlaps(span) {
			out = append(out, a)
		}
	}
	return out, nil
}

// newEmptySystem builds a system over an empty store, passing opts
// through to Create (job-manager sizing, query parallelism, ...).
func newEmptySystem(t *testing.T, opts ...rootcause.Option) *rootcause.System {
	t.Helper()
	sys, err := rootcause.Create(rootcause.Config{StoreDir: filepath.Join(t.TempDir(), "flows")}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys
}

func TestRegistryBuiltins(t *testing.T) {
	names := rootcause.DetectorNames()
	for _, want := range []string{"histogram", "netreflex", "pca"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("built-in %q missing from %v", want, names)
		}
	}
}

func TestRegisterDetectorExternal(t *testing.T) {
	iv := rootcause.Interval{Start: 300, End: 600}
	det := &fakeDetector{
		name: "external-test-ids",
		alarms: []rootcause.Alarm{
			{Detector: "external-test-ids", Interval: iv, Kind: detector.KindDoS},
		},
	}
	if err := rootcause.RegisterDetector(det.name, func(cfg any) (rootcause.Detector, error) {
		return det, nil
	}); err != nil {
		t.Fatal(err)
	}

	sys := newEmptySystem(t)
	ids, err := sys.Detect(t.Context(), det.name, rootcause.Interval{Start: 0, End: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("external detector filed %d alarms, want 1", len(ids))
	}
	entry, err := sys.Alarm(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if entry.Alarm.Kind != detector.KindDoS {
		t.Fatalf("stored alarm = %+v", entry.Alarm)
	}
	// And it shows up in the listing.
	listed := false
	for _, n := range rootcause.DetectorNames() {
		if n == det.name {
			listed = true
		}
	}
	if !listed {
		t.Fatalf("%q not listed in DetectorNames", det.name)
	}
}

func TestRegisterDetectorDuplicateAndInvalid(t *testing.T) {
	factory := func(cfg any) (rootcause.Detector, error) {
		return &fakeDetector{name: "dup-test"}, nil
	}
	if err := rootcause.RegisterDetector("dup-test", factory); err != nil {
		t.Fatal(err)
	}
	if err := rootcause.RegisterDetector("dup-test", factory); err == nil {
		t.Fatal("duplicate registration must fail")
	}
	if err := rootcause.RegisterDetector("", factory); err == nil {
		t.Fatal("empty name must fail")
	}
	if err := rootcause.RegisterDetector("nil-factory", nil); err == nil {
		t.Fatal("nil factory must fail")
	}
}

func TestDetectUnknownName(t *testing.T) {
	sys := newEmptySystem(t)
	_, err := sys.Detect(t.Context(), "no-such-detector", rootcause.Interval{Start: 0, End: 300})
	if err == nil || !strings.Contains(err.Error(), "no-such-detector") {
		t.Fatalf("err = %v, want unknown-detector error", err)
	}
}

func TestWithDetectorConfigRejectsWrongType(t *testing.T) {
	sys := newEmptySystem(t)
	_, err := sys.Detect(t.Context(), "histogram", rootcause.Interval{Start: 0, End: 300},
		rootcause.WithDetectorConfig(42))
	if err == nil || !strings.Contains(err.Error(), "bad config type") {
		t.Fatalf("err = %v, want bad-config-type error", err)
	}
}

// fileAlarms stores n trivial alarms and returns their IDs.
func fileAlarms(sys *rootcause.System, n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = sys.FileAlarm(rootcause.Alarm{
			Detector: "test",
			Interval: rootcause.Interval{Start: 300, End: 600},
		})
	}
	return ids
}

func TestExtractAllBoundedConcurrency(t *testing.T) {
	sys := newEmptySystem(t)
	const n, k = 12, 3
	ids := fileAlarms(sys, n)

	var cur, peak, calls atomic.Int32
	fn := func(ctx context.Context, a *rootcause.Alarm) (*rootcause.Result, error) {
		c := cur.Add(1)
		defer cur.Add(-1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		calls.Add(1)
		time.Sleep(5 * time.Millisecond) // let the pool fill up
		return &rootcause.Result{Alarm: *a}, nil
	}

	got := 0
	for r := range sys.ExtractAll(t.Context(), ids, rootcause.WithConcurrency(k), rootcause.WithExtractFunc(fn)) {
		if r.Err != nil {
			t.Fatalf("alarm %s: %v", r.AlarmID, r.Err)
		}
		got++
	}
	if got != n {
		t.Fatalf("streamed %d results, want %d", got, n)
	}
	if calls.Load() != n {
		t.Fatalf("extract ran %d times, want %d", calls.Load(), n)
	}
	if p := peak.Load(); p > k {
		t.Fatalf("peak concurrency %d exceeds pool size %d", p, k)
	}
	// Successful batch extraction updates the workflow status like Extract.
	for _, id := range ids {
		entry, err := sys.Alarm(id)
		if err != nil {
			t.Fatal(err)
		}
		if entry.Status != "analyzed" {
			t.Fatalf("alarm %s status = %q after batch, want analyzed", id, entry.Status)
		}
	}
}

func TestExtractAllCancellation(t *testing.T) {
	sys := newEmptySystem(t)
	const n, k = 8, 2
	ids := fileAlarms(sys, n)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, n)
	fn := func(ctx context.Context, a *rootcause.Alarm) (*rootcause.Result, error) {
		started <- struct{}{}
		<-ctx.Done() // a slow extraction that only ends by cancellation
		return nil, ctx.Err()
	}

	out := sys.ExtractAll(ctx, ids, rootcause.WithConcurrency(k), rootcause.WithExtractFunc(fn))
	// Wait until the pool is saturated, then cancel mid-batch.
	<-started
	<-started
	cancel()

	deadline := time.After(5 * time.Second)
	got := 0
	for {
		select {
		case r, ok := <-out:
			if !ok {
				// A cancelled batch may discard pending results, but never
				// invents them, and the channel must close promptly.
				if got > n {
					t.Fatalf("streamed %d results for %d alarms", got, n)
				}
				// All workers must have exited: no goroutine leak.
				for i := 0; ; i++ {
					if runtime.NumGoroutine() <= before {
						return
					}
					if i > 100 {
						t.Fatalf("goroutines %d > %d before ExtractAll", runtime.NumGoroutine(), before)
					}
					time.Sleep(10 * time.Millisecond)
				}
			}
			if !errors.Is(r.Err, context.Canceled) {
				t.Fatalf("alarm %s err = %v, want context.Canceled", r.AlarmID, r.Err)
			}
			got++
		case <-deadline:
			t.Fatalf("batch did not wind down after cancellation (%d/%d results)", got, n)
		}
	}
}

// TestExtractAllAbandonedConsumer pins the leak-freedom contract: a
// consumer that stops reading and cancels the context releases the
// pool even though results were never drained.
func TestExtractAllAbandonedConsumer(t *testing.T) {
	sys := newEmptySystem(t)
	ids := fileAlarms(sys, 16)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	fn := func(ctx context.Context, a *rootcause.Alarm) (*rootcause.Result, error) {
		return &rootcause.Result{Alarm: *a}, nil
	}
	out := sys.ExtractAll(ctx, ids, rootcause.WithConcurrency(4), rootcause.WithExtractFunc(fn))
	<-out // read one result, then walk away without draining
	cancel()
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		if i > 200 {
			t.Fatalf("goroutines %d > %d: pool leaked after abandoned consumer", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestExtractAllUnknownAlarm(t *testing.T) {
	sys := newEmptySystem(t)
	ids := fileAlarms(sys, 1)
	fn := func(ctx context.Context, a *rootcause.Alarm) (*rootcause.Result, error) {
		return &rootcause.Result{Alarm: *a}, nil
	}
	var okCount, errCount int
	for r := range sys.ExtractAll(t.Context(), append(ids, "does-not-exist"), rootcause.WithExtractFunc(fn)) {
		if r.Err != nil {
			errCount++
		} else {
			okCount++
		}
	}
	if okCount != 1 || errCount != 1 {
		t.Fatalf("ok=%d err=%d, want 1/1", okCount, errCount)
	}
}

func TestExtractAllEmpty(t *testing.T) {
	sys := newEmptySystem(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range sys.ExtractAll(t.Context(), nil) {
			t.Error("result from empty batch")
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("empty batch did not close its channel")
	}
}

// TestExtractAllStreamsInCompletionOrder pins the streaming contract:
// a fast extraction is delivered before a slow one that started first.
func TestExtractAllStreamsInCompletionOrder(t *testing.T) {
	sys := newEmptySystem(t)
	ids := fileAlarms(sys, 2)
	slow, fast := ids[0], ids[1]

	release := make(chan struct{})
	fn := func(ctx context.Context, a *rootcause.Alarm) (*rootcause.Result, error) {
		if a.ID == slow {
			<-release
		}
		return &rootcause.Result{Alarm: *a}, nil
	}
	out := sys.ExtractAll(t.Context(), ids, rootcause.WithConcurrency(2), rootcause.WithExtractFunc(fn))
	first := <-out
	if first.AlarmID != fast {
		t.Fatalf("first streamed result = %s, want the fast alarm %s", first.AlarmID, fast)
	}
	close(release)
	second := <-out
	if second.AlarmID != slow {
		t.Fatalf("second streamed result = %s, want %s", second.AlarmID, slow)
	}
	if _, ok := <-out; ok {
		t.Fatal("channel not closed after all results")
	}
}

func TestWithExtractionOptionsInvalid(t *testing.T) {
	sys := newEmptySystem(t)
	id := sys.FileAlarm(rootcause.Alarm{Interval: rootcause.Interval{Start: 300, End: 600}})
	bad := rootcause.DefaultExtractionOptions()
	bad.MaxItemsets = 1
	bad.MinItemsets = 5 // Max < Min: rejected by option validation
	if _, err := sys.Extract(t.Context(), id, rootcause.WithExtractionOptions(bad)); err == nil {
		t.Fatal("invalid per-call extraction options must be rejected")
	}
}

func TestExtractCancelledContext(t *testing.T) {
	dir := t.TempDir()
	sys, err := rootcause.Create(rootcause.Config{StoreDir: filepath.Join(dir, "flows")})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	recs := make([]rootcause.Record, 200)
	for i := range recs {
		recs[i] = rootcause.Record{
			Start: 300 + uint32(i%300), SrcIP: flow.IP(i + 1), DstIP: 2,
			SrcPort: 1, DstPort: 80, Proto: flow.ProtoTCP, Packets: 1, Bytes: 40,
		}
	}
	if err := sys.AddFlows(recs); err != nil {
		t.Fatal(err)
	}
	id := sys.FileAlarm(rootcause.Alarm{Interval: rootcause.Interval{Start: 300, End: 600}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.Extract(ctx, id); !errors.Is(err, context.Canceled) {
		t.Fatalf("Extract err = %v, want context.Canceled", err)
	}
	if _, err := sys.Flows(ctx, rootcause.Interval{Start: 0, End: 900}, ""); !errors.Is(err, context.Canceled) {
		t.Fatalf("Flows err = %v, want context.Canceled", err)
	}
}

// Compile-time check that the exported factory type matches the
// registry's, so third-party registration code can use either name.
var _ rootcause.DetectorFactory = func(cfg any) (detector.Detector, error) {
	return nil, fmt.Errorf("unused")
}
