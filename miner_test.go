package rootcause_test

import (
	"path/filepath"
	"slices"
	"testing"

	rootcause "repro"
	"repro/internal/detector"
	"repro/internal/flow"
	"repro/internal/gen"
)

func TestMinerNames(t *testing.T) {
	names := rootcause.MinerNames()
	for _, want := range []string{"apriori", "fpgrowth"} {
		if !slices.Contains(names, want) {
			t.Errorf("MinerNames() = %v, missing %q", names, want)
		}
	}
}

func TestRegisterMinerRejectsDuplicates(t *testing.T) {
	if err := rootcause.RegisterMiner("apriori", nil); err == nil {
		t.Fatal("duplicate / nil-factory registration must fail")
	}
}

// minerTestSystem builds a system with a scan scenario and one filed
// alarm.
func minerTestSystem(t *testing.T) (*rootcause.System, string) {
	t.Helper()
	sys, err := rootcause.Create(rootcause.Config{StoreDir: filepath.Join(t.TempDir(), "flows")})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	scanner := flow.MustParseIP("10.9.9.9")
	victim := flow.MustParseIP("198.19.0.9")
	scenario := gen.Scenario{
		Background: gen.Background{NumPoPs: 2, FlowsPerBin: 250},
		Bins:       4, StartTime: 1_300_000_200, Seed: 17,
		Placements: []gen.Placement{
			{Anomaly: gen.PortScan{Scanner: scanner, Victim: victim, SrcPort: 1234,
				Ports: 1200, FlowsPerPort: 1, Router: 0}, Bin: 2},
		},
	}
	truth, err := scenario.Generate(sys.Store())
	if err != nil {
		t.Fatal(err)
	}
	id := sys.FileAlarm(rootcause.Alarm{
		Detector: "external-ids",
		Interval: truth.Entries[0].Interval,
		Kind:     detector.KindPortScan,
		Meta: []detector.MetaItem{
			{Feature: flow.FeatSrcIP, Value: uint32(scanner)},
		},
	})
	return sys, id
}

// TestWithMinerEquivalence extracts the same alarm through each built-in
// miner via the public API and requires identical ranked itemsets.
func TestWithMinerEquivalence(t *testing.T) {
	sys, id := minerTestSystem(t)
	ap, err := sys.Extract(t.Context(), id, rootcause.WithMiner("apriori"))
	if err != nil {
		t.Fatal(err)
	}
	fp, err := sys.Extract(t.Context(), id, rootcause.WithMiner("fpgrowth"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ap.Itemsets) == 0 {
		t.Fatal("no itemsets extracted")
	}
	if len(ap.Itemsets) != len(fp.Itemsets) {
		t.Fatalf("apriori %d itemsets, fpgrowth %d", len(ap.Itemsets), len(fp.Itemsets))
	}
	for i := range ap.Itemsets {
		a, f := &ap.Itemsets[i], &fp.Itemsets[i]
		if !a.Items.Equal(f.Items) || a.FlowSupport != f.FlowSupport || a.PacketSupport != f.PacketSupport {
			t.Fatalf("row %d differs: %v vs %v", i, a, f)
		}
	}
}

// TestWithMinerComposesWithExtractionOptions: the WithMiner name wins
// over the options' Miner field.
func TestWithMinerComposesWithExtractionOptions(t *testing.T) {
	sys, id := minerTestSystem(t)
	opts := rootcause.DefaultExtractionOptions()
	opts.Miner = "apriori"
	opts.MaxItemsets = 3
	res, err := sys.Extract(t.Context(), id,
		rootcause.WithExtractionOptions(opts), rootcause.WithMiner("fpgrowth"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Itemsets) > 3 {
		t.Fatalf("MaxItemsets override lost: %d itemsets", len(res.Itemsets))
	}
}

func TestWithMinerUnknownRejected(t *testing.T) {
	sys, id := minerTestSystem(t)
	if _, err := sys.Extract(t.Context(), id, rootcause.WithMiner("frobnicator")); err == nil {
		t.Fatal("unknown miner must be rejected")
	}
	// Config-level unknown miner fails at Open/Create.
	opts := rootcause.DefaultExtractionOptions()
	opts.Miner = "frobnicator"
	if _, err := rootcause.Create(rootcause.Config{
		StoreDir: filepath.Join(t.TempDir(), "s"), Extraction: &opts,
	}); err == nil {
		t.Fatal("unknown config miner must be rejected at assembly")
	}
}
