package rootcause

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/alarmdb"
	"repro/internal/incident"
	"repro/internal/jobs"
)

// Incident-layer re-exports: the correlation vocabulary without internal
// package paths.
type (
	// Incident is one correlated event — the alarms a single root cause
	// raised across bins and detectors.
	Incident = incident.Incident
	// IncidentLink is one lead-lag edge ("port scan leads ddos by ~300s").
	IncidentLink = incident.Link
	// IncidentEntry is a stored incident with its lifecycle status.
	IncidentEntry = alarmdb.IncidentEntry
	// IncidentStatus is an incident lifecycle state.
	IncidentStatus = alarmdb.IncidentStatus
	// CorrelationOptions tunes the dedup + correlation pipeline directly;
	// most callers use WithDedupWindow/WithClusterGap/WithLeadLagConfidence
	// instead.
	CorrelationOptions = incident.Options
)

// Incident lifecycle states: open → extracted, or open → merged when a
// later correlation pass absorbs the incident into a larger one.
const (
	IncidentOpen      = alarmdb.IncidentOpen
	IncidentMerged    = alarmdb.IncidentMerged
	IncidentExtracted = alarmdb.IncidentExtracted
)

// JobKindExtractIncident is the job kind of a per-incident extraction.
const JobKindExtractIncident = "extract-incident"

// WithDedupWindow sets the alarm dedup time bucket in seconds for one
// Correlate call (default 300, one measurement bin): repeated alarms
// from one detector for the same signature within a bucket collapse.
func WithDedupWindow(seconds uint32) Option {
	return func(o *callOptions) { o.dedupWindow = seconds }
}

// WithClusterGap sets the temporal-clustering joining distance in
// seconds for one Correlate call (default 600): an alarm within the gap
// of a cluster's interval joins that incident.
func WithClusterGap(seconds uint32) Option {
	return func(o *callOptions) { o.clusterGap = seconds }
}

// WithLeadLagConfidence sets the confidence floor for one Correlate
// call's lead-lag links (default 0.5): a "kind A leads kind B" edge is
// reported only when its modal lag holds at least this fraction of the
// observed pairs.
func WithLeadLagConfidence(floor float64) Option {
	return func(o *callOptions) { o.leadLagConfidence = floor }
}

// incidentOptions folds the correlation options into the incident
// layer's configuration (zero values inherit its defaults).
func (o *callOptions) incidentOptions() incident.Options {
	return incident.Options{
		DedupWindow:   o.dedupWindow,
		ClusterGap:    o.clusterGap,
		MinConfidence: o.leadLagConfidence,
	}
}

// CorrelationSummary reports one Correlate run.
type CorrelationSummary struct {
	// AlarmsConsidered counts the stored alarms fed to the correlator
	// (the storm size).
	AlarmsConsidered int `json:"alarms_considered"`
	// AlarmsKept counts the alarms surviving stable-Bloom dedup.
	AlarmsKept int `json:"alarms_kept"`
	// IncidentIDs are the stored incidents, in time order. Re-correlating
	// the same span returns the same IDs — reconciliation is idempotent.
	IncidentIDs []string `json:"incident_ids"`
}

// Correlate collapses the stored alarms of a span into incidents:
// stable-Bloom dedup, temporal clustering, and per-incident lead-lag
// chains (see the incident package). Rejected alarms are excluded —
// an operator's false-positive verdict silences the event. The
// resulting incidents are reconciled into the alarm database: an
// incident with a previously stored member set keeps its ID and
// lifecycle status, new ones open fresh, and open incidents absorbed
// by a larger correlation are marked merged.
func (s *System) Correlate(ctx context.Context, span Interval, opts ...Option) (*CorrelationSummary, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	o := resolveOptions(opts)
	entries := s.alarms.Query(span, "")
	alarms := make([]Alarm, 0, len(entries))
	for _, e := range entries {
		if e.Status == alarmdb.StatusRejected {
			continue
		}
		alarms = append(alarms, e.Alarm)
	}
	corr, err := incident.Correlate(alarms, o.incidentOptions())
	if err != nil {
		return nil, err
	}
	ids := s.alarms.ReconcileIncidents(corr.Incidents)
	return &CorrelationSummary{
		AlarmsConsidered: corr.AlarmsIn,
		AlarmsKept:       corr.Survivors,
		IncidentIDs:      ids,
	}, nil
}

// Incidents returns the stored incidents overlapping iv (zero interval
// = all), every lifecycle status, in time order.
func (s *System) Incidents(iv Interval) []IncidentEntry {
	return s.alarms.Incidents(iv, "")
}

// Incident returns one stored incident by ID ("i1", "i2", …).
func (s *System) Incident(id string) (IncidentEntry, error) {
	return s.alarms.Incident(id)
}

// IncidentCounts reports how many stored incidents sit in each
// lifecycle status (the health-endpoint summary).
func (s *System) IncidentCounts() map[IncidentStatus]int {
	return s.alarms.IncidentCounts()
}

// IncidentAlarms returns an incident's member alarms (dedup survivors
// first, then the duplicates they suppressed).
func (s *System) IncidentAlarms(id string) ([]AlarmEntry, error) {
	e, err := s.alarms.Incident(id)
	if err != nil {
		return nil, err
	}
	out := make([]AlarmEntry, 0, len(e.Incident.AlarmIDs))
	for _, aid := range e.Incident.AlarmIDs {
		ae, err := s.alarms.Get(aid)
		if err != nil {
			return nil, fmt.Errorf("incident %s member: %w", id, err)
		}
		out = append(out, ae)
	}
	return out, nil
}

// IncidentExtractionAlarm returns the single merged alarm an incident's
// extraction runs on: the representative member's identity, the union
// of member intervals, and the deduplicated union of member meta-data.
// Extracting this alarm synchronously (ExtractAlarm) produces exactly
// the result ExtractIncident records — the parity the tests pin.
func (s *System) IncidentExtractionAlarm(id string) (Alarm, error) {
	e, err := s.alarms.Incident(id)
	if err != nil {
		return Alarm{}, err
	}
	members, err := s.IncidentAlarms(id)
	if err != nil {
		return Alarm{}, err
	}
	alarms := make([]Alarm, len(members))
	for i, m := range members {
		alarms[i] = m.Alarm
	}
	return incident.ExtractionAlarm(&e.Incident, alarms)
}

// ExtractIncident runs the one extraction of a correlated incident: the
// member alarms are merged into a single alarm (see
// IncidentExtractionAlarm) and mined once, so a composite event — recon
// plus attack — surfaces all its causes in one ranked list. On success
// the incident is marked extracted and its still-new member alarms
// analyzed; operator verdicts on members are left untouched. The same
// per-call options as Extract apply.
func (s *System) ExtractIncident(ctx context.Context, id string, opts ...Option) (*Result, error) {
	o := resolveOptions(opts)
	fn, err := s.extractFn(&o)
	if err != nil {
		return nil, err
	}
	return s.extractIncident(ctx, id, fn)
}

// extractIncident is the shared incident path of ExtractIncident and
// the incident job task.
func (s *System) extractIncident(ctx context.Context, id string, fn func(ctx context.Context, a *Alarm) (*Result, error)) (*Result, error) {
	e, err := s.alarms.Incident(id)
	if err != nil {
		return nil, err
	}
	if e.Status == alarmdb.IncidentMerged {
		return nil, fmt.Errorf("rootcause: incident %s was merged (%s); extract the absorbing incident", id, e.Note)
	}
	members, err := s.IncidentAlarms(id)
	if err != nil {
		return nil, err
	}
	alarms := make([]Alarm, len(members))
	for i, m := range members {
		alarms[i] = m.Alarm
	}
	merged, err := incident.ExtractionAlarm(&e.Incident, alarms)
	if err != nil {
		return nil, err
	}
	res, err := fn(ctx, &merged)
	if err != nil {
		return nil, err
	}
	for _, m := range members {
		if m.Status != alarmdb.StatusNew {
			continue
		}
		if err := s.alarms.SetStatus(m.Alarm.ID, alarmdb.StatusAnalyzed, "via incident "+id); err != nil {
			return nil, err
		}
	}
	note := fmt.Sprintf("%d itemsets", len(res.Itemsets))
	if err := s.alarms.SetIncidentStatus(id, alarmdb.IncidentExtracted, note); err != nil {
		return nil, err
	}
	return res, nil
}

// incidentTask builds the job task for one per-incident extraction.
func (s *System) incidentTask(incidentID string, o callOptions) jobs.Task {
	return func(ctx context.Context, report func(JobProgress)) (any, error) {
		ro := o
		user := o.progress
		ro.progress = func(p ExtractionProgress) {
			report(JobProgress{
				Phase:       p.Phase,
				TuningRound: p.TuningRound,
				Candidates:  p.CandidateFlows,
				Itemsets:    p.Itemsets,
			})
			if user != nil {
				user(p)
			}
		}
		fn, err := s.extractFn(&ro)
		if err != nil {
			return nil, err
		}
		return s.extractIncident(ctx, incidentID, fn)
	}
}

// errNoJobTarget rejects a JobRequest that names no or several targets.
var errNoJobTarget = errors.New("rootcause: JobRequest needs exactly one of AlarmID, AlarmIDs or IncidentID")
